//! Schedule exploration: who advances this cycle?
//!
//! Every trial of the adaptive tester used to advance all slave kernels
//! in lock-step — one kernel cycle each per system cycle. That explores
//! the *input* side of concurrency testing (which service patterns are
//! issued) but pins the *schedule* side: a bug that needs slave 1 to run
//! twenty cycles ahead of slave 0 is structurally unreachable no matter
//! how the PFA adapts. A [`Scheduler`] breaks that pin: each system
//! cycle it decides which slave kernels execute a task cycle
//! ([`MultiCoreSystem::step_with`](crate::MultiCoreSystem::step_with)),
//! turning each trial into a point in (pattern × schedule) space.
//!
//! Two schedulers ship:
//!
//! * [`LockStepScheduler`] — the historical behaviour, bit-identical to
//!   [`MultiCoreSystem::step`](crate::MultiCoreSystem::step): every
//!   kernel advances every cycle.
//! * [`RandomPriorityScheduler`] — a PCT-style randomized-priority
//!   search (cf. Burckhardt et al., *A Randomized Scheduler with
//!   Probabilistic Guarantees of Finding Bugs*): each slave gets a
//!   seeded random priority, only the highest-priority runnable slave
//!   executes, and at a small budget of seeded *priority-change points*
//!   the leader is demoted below everyone else. All decisions derive
//!   from one `schedule_seed`, so any interleaving the search finds is
//!   replayable from the `(pattern_seed, schedule_seed)` pair alone.
//!
//! Doorbell interrupts are *not* schedulable: command servicing and the
//! cross-core coupling (semaphore forwarding, SRAM mirroring) happen
//! every cycle on every slave regardless of the scheduler, exactly as
//! interrupts preempt task execution on the real platform. The scheduler
//! gates only the task-level kernel cycle.
//!
//! ## Fairness backstop
//!
//! Textbook PCT assumes a liveness-agnostic bug oracle (crashes,
//! assertions). pTest's detector also runs *no-progress* rules
//! (starvation, livelock) that presume a weakly fair scheduler, so the
//! randomized scheduler guarantees: a runnable slave is never skipped
//! more than [`RandomPriorityConfig::fairness_window`] consecutive
//! cycles. The leader still runs up to `fairness_window` times faster
//! than everyone else — plenty of relative drift to expose ordering
//! races — while keeping every slave's progress bounded, so the
//! no-progress rules stay sound.

use std::fmt;

use ptest_soc::Cycles;

/// Per-kernel outcome of a batch of scheduler-skipped idle cycles
/// ([`Scheduler::skip_idle_cycles`]): how the kernel's pure idle
/// bookkeeping must advance to stay bit-identical with stepping the
/// cycles one by one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdleAdvance {
    /// Number of skipped cycles the scheduler would have advanced the
    /// kernel in (each a pure idle tick — nothing was runnable).
    pub ticks: u64,
    /// The last skipped cycle the kernel was advanced at, if any — the
    /// kernel's local clock must land there, exactly as its final
    /// cycle-by-cycle tick would have left it.
    pub last: Option<Cycles>,
}

/// Decides, each system cycle, which slave kernels execute a task cycle.
///
/// Implementations must be deterministic: the advance decisions may
/// depend only on construction inputs (seed, configuration) and the
/// sequence of `plan` calls — never on wall-clock time or global state —
/// so a recorded `schedule_seed` replays the exact interleaving.
pub trait Scheduler: fmt::Debug + Send {
    /// Fills `advance` (pre-sized to the slave count, all `true`) with
    /// this cycle's decisions. `runnable[i]` reports whether slave `i`'s
    /// kernel has work a task cycle could progress (a dispatchable task
    /// or a sleeper due at `now`); `now` is the cycle about to execute.
    fn plan(&mut self, now: Cycles, runnable: &[bool], advance: &mut [bool]);

    /// Plans `count` consecutive cycles starting at `start` during which
    /// *no* slave is runnable, accumulating into `idle` (pre-sized to
    /// the slave count) how many of those cycles each kernel would have
    /// been advanced in — each a pure idle tick — and the last cycle it
    /// was advanced at. Must leave the scheduler in exactly the state
    /// `count` calls of [`Scheduler::plan`] with all-false `runnable`
    /// would have. `runnable` is the all-false slice those calls would
    /// have seen; `advance` is caller-provided scratch.
    ///
    /// The default implementation literally replays `plan` cycle by
    /// cycle — exact for any scheduler, with no speedup; schedulers
    /// whose idle behaviour has a closed form override it.
    fn skip_idle_cycles(
        &mut self,
        start: Cycles,
        count: u64,
        runnable: &[bool],
        advance: &mut [bool],
        idle: &mut [IdleAdvance],
    ) {
        for c in 0..count {
            let now = Cycles::new(start.get() + c);
            advance.fill(true);
            self.plan(now, runnable, advance);
            for (i, &advanced) in advance.iter().enumerate() {
                if advanced {
                    idle[i].ticks += 1;
                    idle[i].last = Some(now);
                }
            }
        }
    }
}

/// The historical schedule: every kernel advances every cycle. Driving
/// a system through `step_with(&mut LockStepScheduler)` is bit-identical
/// to calling [`MultiCoreSystem::step`](crate::MultiCoreSystem::step) —
/// the golden fixtures pin exactly that.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStepScheduler;

impl Scheduler for LockStepScheduler {
    fn plan(&mut self, _now: Cycles, _runnable: &[bool], _advance: &mut [bool]) {
        // `advance` arrives all-true: lock-step is the identity plan.
    }

    fn skip_idle_cycles(
        &mut self,
        start: Cycles,
        count: u64,
        _runnable: &[bool],
        _advance: &mut [bool],
        idle: &mut [IdleAdvance],
    ) {
        // Lock-step advances every kernel every cycle, idle or not.
        if count == 0 {
            return;
        }
        let last = Cycles::new(start.get() + count - 1);
        for slot in idle.iter_mut() {
            slot.ticks += count;
            slot.last = Some(last);
        }
    }
}

/// Knobs of the [`RandomPriorityScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomPriorityConfig {
    /// Budget of priority-change points (PCT's `d - 1`): seeded cycle
    /// indices at which the current leader is demoted below every other
    /// slave. 0 keeps the initial priority order for the whole trial.
    pub change_points: usize,
    /// Horizon (in scheduled cycles) the change points are sampled over
    /// — roughly the expected trial length in cycles.
    pub horizon: u64,
    /// A runnable slave is never skipped more than this many consecutive
    /// cycles (see the module docs on fairness). 0 disables the backstop
    /// (pure PCT; only safe with liveness-agnostic oracles).
    pub fairness_window: u32,
    /// Which of the seeded change points are *active*: bit `i` keeps the
    /// `i`-th change point in ascending scheduled-cycle order. The
    /// default all-ones mask keeps every point, which is bit-identical
    /// to the pre-mask scheduler for any seed. Reproducer minimization
    /// clears bits to binary-search the minimal set of demotions that
    /// still triggers a bug; the seeds, priorities and surviving points
    /// are untouched, so the shrunk schedule replays from the same
    /// `schedule_seed`. Points beyond bit 63 are always kept.
    pub change_point_mask: u64,
}

impl Default for RandomPriorityConfig {
    fn default() -> RandomPriorityConfig {
        RandomPriorityConfig {
            change_points: 3,
            horizon: 60_000,
            fairness_window: 64,
            change_point_mask: u64::MAX,
        }
    }
}

impl RandomPriorityConfig {
    /// How many of the seeded change points the mask keeps active.
    #[must_use]
    pub fn active_change_points(&self) -> usize {
        (0..self.change_points)
            .filter(|&i| i >= 64 || self.change_point_mask & (1 << i) != 0)
            .count()
    }
}

/// How a trial schedules its slave kernels — the serializable description
/// a configuration carries, compiled into a [`Scheduler`] per trial via
/// [`ScheduleSpec::scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleSpec {
    /// Advance every kernel every cycle (the historical default).
    #[default]
    LockStep,
    /// PCT-style randomized-priority exploration.
    RandomPriority(RandomPriorityConfig),
}

impl ScheduleSpec {
    /// The default randomized-priority exploration spec.
    #[must_use]
    pub fn random_priority() -> ScheduleSpec {
        ScheduleSpec::RandomPriority(RandomPriorityConfig::default())
    }

    /// Compiles the spec into a scheduler for a `slaves`-slave system,
    /// seeded with `schedule_seed`. Returns `None` for
    /// [`ScheduleSpec::LockStep`]: callers drive the plain
    /// [`MultiCoreSystem::step`](crate::MultiCoreSystem::step) path,
    /// which skips the per-cycle runnable scan entirely and is therefore
    /// trivially bit-identical to the pre-scheduler behaviour.
    #[must_use]
    pub fn scheduler(&self, slaves: usize, schedule_seed: u64) -> Option<Box<dyn Scheduler>> {
        match *self {
            ScheduleSpec::LockStep => None,
            ScheduleSpec::RandomPriority(cfg) => Some(Box::new(RandomPriorityScheduler::new(
                slaves,
                schedule_seed,
                cfg,
            ))),
        }
    }

    /// Short stable label for reports (e.g. `"lock-step"`,
    /// `"random-priority(d=3)"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            ScheduleSpec::LockStep => "lock-step".to_owned(),
            ScheduleSpec::RandomPriority(cfg) => {
                let active = cfg.active_change_points();
                if active == cfg.change_points {
                    format!("random-priority(d={})", cfg.change_points)
                } else {
                    format!(
                        "random-priority(d={},mask={:#b})",
                        cfg.change_points, cfg.change_point_mask
                    )
                }
            }
        }
    }
}

/// The workspace's seed-stream mixer, re-exported from its single home
/// in [`ptest_soc::seed`] under this module's historical path. Every
/// derived seed in the repo — campaign trial seeds, campaign schedule
/// seeds, the trial engine's implicit schedule seed, this module's
/// priority and change-point streams — goes through that one
/// definition, so the documented seed-derivation story cannot drift
/// between crates.
pub use ptest_soc::seed::splitmix64;
use ptest_soc::seed::splitmix64_next;

/// The PCT-style randomized-priority scheduler. See the [module
/// docs](self) for the search it performs and its determinism contract.
#[derive(Debug, Clone)]
pub struct RandomPriorityScheduler {
    /// Per-slave priorities; the highest runnable one advances.
    priorities: Vec<u64>,
    /// Remaining change points, as *descending* scheduled-cycle indices
    /// (popped from the back as the trial passes them).
    change_points: Vec<u64>,
    /// Cycles planned so far.
    planned: u64,
    /// Next value handed out by a demotion; strictly decreasing, and
    /// starting below every initial priority, so each demoted leader
    /// lands below everyone demoted before it.
    next_demoted: u64,
    /// Per-slave count of consecutive planned cycles the slave was
    /// runnable but not advanced.
    skipped: Vec<u32>,
    fairness_window: u32,
}

impl RandomPriorityScheduler {
    /// Seeds priorities and change points for a `slaves`-slave system.
    ///
    /// # Panics
    ///
    /// Panics if `slaves` is zero.
    #[must_use]
    pub fn new(slaves: usize, schedule_seed: u64, cfg: RandomPriorityConfig) -> Self {
        assert!(slaves > 0, "a schedule needs at least one slave");
        let mut stream = schedule_seed;
        // Initial priorities in the upper half of u64 space; demotions
        // count down from below them. Ties are broken by slave index in
        // `leader`, so duplicates would not break determinism — they are
        // just astronomically unlikely.
        let priorities: Vec<u64> = (0..slaves)
            .map(|_| (1 << 63) | splitmix64_next(&mut stream))
            .collect();
        // The full seeded point set is always drawn — masking filters
        // *after* sorting, so clearing a bit never shifts which cycles
        // the surviving points land on (and the all-ones mask is
        // bit-identical to the pre-mask scheduler).
        let mut change_points: Vec<u64> = (0..cfg.change_points)
            .map(|_| splitmix64_next(&mut stream) % cfg.horizon.max(1))
            .collect();
        change_points.sort_unstable();
        let mut change_points: Vec<u64> = change_points
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| i >= 64 || cfg.change_point_mask & (1 << i) != 0)
            .map(|(_, cp)| cp)
            .collect();
        // Descending, so passing cycles pop from the back in order.
        change_points.reverse();
        RandomPriorityScheduler {
            priorities,
            change_points,
            planned: 0,
            next_demoted: 1 << 62,
            skipped: vec![0; slaves],
            fairness_window: cfg.fairness_window,
        }
    }

    /// The slave with the highest priority among `eligible` ones
    /// (smallest index wins ties).
    fn leader(&self, eligible: impl Fn(usize) -> bool) -> Option<usize> {
        let mut best: Option<(u64, usize)> = None;
        for (i, &p) in self.priorities.iter().enumerate() {
            if eligible(i) && best.is_none_or(|(bp, _)| p > bp) {
                best = Some((p, i));
            }
        }
        best.map(|(_, i)| i)
    }
}

impl Scheduler for RandomPriorityScheduler {
    fn plan(&mut self, _now: Cycles, runnable: &[bool], advance: &mut [bool]) {
        // Demote the current leader at each passed change point.
        while self
            .change_points
            .last()
            .is_some_and(|&cp| cp <= self.planned)
        {
            self.change_points.pop();
            if let Some(leader) = self.leader(|i| runnable.get(i).copied().unwrap_or(false)) {
                self.next_demoted -= 1;
                self.priorities[leader] = self.next_demoted;
            }
        }
        self.planned += 1;

        let chosen = self.leader(|i| runnable.get(i).copied().unwrap_or(false));
        for (i, slot) in advance.iter_mut().enumerate() {
            if !runnable.get(i).copied().unwrap_or(false) {
                // Nothing a task cycle could progress: skipping is free
                // (and resets the fairness debt).
                *slot = false;
                self.skipped[i] = 0;
                continue;
            }
            let starved = self.fairness_window > 0
                && self.skipped[i].saturating_add(1) >= self.fairness_window;
            if Some(i) == chosen || starved {
                *slot = true;
                self.skipped[i] = 0;
            } else {
                *slot = false;
                self.skipped[i] += 1;
            }
        }
    }

    fn skip_idle_cycles(
        &mut self,
        _start: Cycles,
        count: u64,
        _runnable: &[bool],
        _advance: &mut [bool],
        _idle: &mut [IdleAdvance],
    ) {
        // With nothing runnable, each planned cycle pops its passed
        // change points with no leader to demote (the leader over an
        // all-false runnable set is `None`), counts the cycle, and
        // clears every slave's fairness debt; no slave is advanced. The
        // whole batch collapses to a closed form.
        let end = self.planned + count;
        while self.change_points.last().is_some_and(|&cp| cp < end) {
            self.change_points.pop();
        }
        self.planned = end;
        self.skipped.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::{plan_once, replay_idle, skip_idle};

    #[test]
    fn lock_step_advances_everyone() {
        let mut s = LockStepScheduler;
        assert_eq!(plan_once(&mut s, &[true, false, true]), [true, true, true]);
    }

    #[test]
    fn random_priority_advances_exactly_one_runnable_slave() {
        let mut s = RandomPriorityScheduler::new(4, 7, RandomPriorityConfig::default());
        let advance = plan_once(&mut s, &[true; 4]);
        assert_eq!(advance.iter().filter(|&&a| a).count(), 1, "{advance:?}");
    }

    #[test]
    fn non_runnable_slaves_are_never_advanced() {
        let mut s = RandomPriorityScheduler::new(3, 9, RandomPriorityConfig::default());
        for _ in 0..200 {
            let advance = plan_once(&mut s, &[false, true, false]);
            assert_eq!(advance, [false, true, false]);
        }
    }

    #[test]
    fn same_seed_same_plan_stream() {
        let cfg = RandomPriorityConfig::default();
        let mut a = RandomPriorityScheduler::new(3, 42, cfg);
        let mut b = RandomPriorityScheduler::new(3, 42, cfg);
        for step in 0..5_000u64 {
            let runnable = [true, step % 7 != 0, true];
            assert_eq!(plan_once(&mut a, &runnable), plan_once(&mut b, &runnable));
        }
    }

    #[test]
    fn different_seeds_disagree_somewhere() {
        let cfg = RandomPriorityConfig::default();
        let mut a = RandomPriorityScheduler::new(4, 1, cfg);
        let mut b = RandomPriorityScheduler::new(4, 2, cfg);
        let runnable = [true; 4];
        let disagreements = (0..500)
            .filter(|_| plan_once(&mut a, &runnable) != plan_once(&mut b, &runnable))
            .count();
        assert!(disagreements > 0, "seeds must shape the schedule");
    }

    #[test]
    fn fairness_backstop_bounds_skips() {
        let cfg = RandomPriorityConfig {
            fairness_window: 8,
            ..RandomPriorityConfig::default()
        };
        let mut s = RandomPriorityScheduler::new(2, 3, cfg);
        let mut gap = [0u32; 2];
        for _ in 0..2_000 {
            let advance = plan_once(&mut s, &[true, true]);
            for i in 0..2 {
                if advance[i] {
                    gap[i] = 0;
                } else {
                    gap[i] += 1;
                    assert!(gap[i] < 8, "slave {i} skipped {} cycles", gap[i]);
                }
            }
        }
    }

    #[test]
    fn change_points_demote_the_leader() {
        let cfg = RandomPriorityConfig {
            change_points: 1,
            horizon: 10,
            fairness_window: 0,
            ..RandomPriorityConfig::default()
        };
        // With one change point inside the first 10 cycles and no
        // fairness backstop, the leader must flip exactly once in a
        // 2-slave always-runnable system.
        let mut s = RandomPriorityScheduler::new(2, 11, cfg);
        let mut leaders = Vec::new();
        for _ in 0..30 {
            let advance = plan_once(&mut s, &[true, true]);
            leaders.push(advance.iter().position(|&a| a).unwrap());
        }
        let flips = leaders.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "{leaders:?}");
    }

    #[test]
    fn zero_change_points_keep_one_leader_without_backstop() {
        let cfg = RandomPriorityConfig {
            change_points: 0,
            horizon: 100,
            fairness_window: 0,
            ..RandomPriorityConfig::default()
        };
        let mut s = RandomPriorityScheduler::new(3, 5, cfg);
        let first = plan_once(&mut s, &[true; 3]);
        for _ in 0..100 {
            assert_eq!(plan_once(&mut s, &[true; 3]), first);
        }
    }

    #[test]
    fn lock_step_skip_matches_per_cycle_replay() {
        let mut replayed = LockStepScheduler;
        let mut skipped = LockStepScheduler;
        assert_eq!(
            skip_idle(&mut skipped, 7, 1_000, 3),
            replay_idle(&mut replayed, 7, 1_000, 3)
        );
        assert_eq!(
            skip_idle(&mut skipped, 1, 0, 3),
            vec![IdleAdvance::default(); 3]
        );
    }

    #[test]
    fn random_priority_skip_matches_per_cycle_replay() {
        // Exercise the closed form across change-point boundaries: a
        // short horizon guarantees all three change points fall inside
        // the skipped window, and interleaving idle batches with live
        // plan calls checks the scheduler state (planned, change points,
        // fairness debt) is left exactly as the replay leaves it.
        let cfg = RandomPriorityConfig {
            change_points: 3,
            horizon: 500,
            fairness_window: 8,
            ..RandomPriorityConfig::default()
        };
        for seed in 0..16u64 {
            let mut replayed = RandomPriorityScheduler::new(3, seed, cfg);
            let mut skipped = RandomPriorityScheduler::new(3, seed, cfg);
            // Build up some fairness debt and demotions first.
            for step in 0..40u64 {
                let runnable = [true, step % 3 != 0, true];
                assert_eq!(
                    plan_once(&mut replayed, &runnable),
                    plan_once(&mut skipped, &runnable)
                );
            }
            assert_eq!(
                skip_idle(&mut skipped, 41, 600, 3),
                replay_idle(&mut replayed, 41, 600, 3)
            );
            // Post-skip streams must stay identical: the internal state
            // (planned, remaining change points, priorities, skipped)
            // agrees, not just the idle outcome.
            for step in 0..100u64 {
                let runnable = [step % 5 != 0, true, true];
                assert_eq!(
                    plan_once(&mut replayed, &runnable),
                    plan_once(&mut skipped, &runnable)
                );
            }
        }
    }

    #[test]
    fn full_mask_is_bit_identical_to_the_default_config() {
        let full = RandomPriorityConfig::default();
        let explicit = RandomPriorityConfig {
            change_point_mask: u64::MAX,
            ..full
        };
        for seed in 0..8u64 {
            let mut a = RandomPriorityScheduler::new(3, seed, full);
            let mut b = RandomPriorityScheduler::new(3, seed, explicit);
            for step in 0..2_000u64 {
                let runnable = [true, step % 5 != 0, true];
                assert_eq!(plan_once(&mut a, &runnable), plan_once(&mut b, &runnable));
            }
        }
    }

    #[test]
    fn empty_mask_behaves_like_zero_change_points() {
        let masked = RandomPriorityConfig {
            change_points: 3,
            horizon: 100,
            fairness_window: 0,
            change_point_mask: 0,
        };
        let none = RandomPriorityConfig {
            change_points: 0,
            ..masked
        };
        // Same seed: the priority draws precede the change-point draws,
        // so initial priorities agree and neither ever demotes.
        let mut a = RandomPriorityScheduler::new(2, 17, masked);
        let mut b = RandomPriorityScheduler::new(2, 17, none);
        for _ in 0..300 {
            assert_eq!(plan_once(&mut a, &[true; 2]), plan_once(&mut b, &[true; 2]));
        }
        assert_eq!(masked.active_change_points(), 0);
        assert_eq!(RandomPriorityConfig::default().active_change_points(), 3);
    }

    #[test]
    fn masking_drops_exactly_the_cleared_demotions() {
        // d=2, no fairness: the full schedule flips leadership at both
        // points; keeping only one (either bit) flips exactly once.
        let full = RandomPriorityConfig {
            change_points: 2,
            horizon: 20,
            fairness_window: 0,
            change_point_mask: u64::MAX,
        };
        let flips = |mask: u64| {
            let cfg = RandomPriorityConfig {
                change_point_mask: mask,
                ..full
            };
            let mut s = RandomPriorityScheduler::new(2, 23, cfg);
            let mut leaders = Vec::new();
            for _ in 0..60 {
                let advance = plan_once(&mut s, &[true, true]);
                leaders.push(advance.iter().position(|&a| a).unwrap());
            }
            leaders.windows(2).filter(|w| w[0] != w[1]).count()
        };
        assert_eq!(flips(0), 0);
        assert_eq!(flips(0b01), 1);
        assert_eq!(flips(0b10), 1);
        assert_eq!(flips(u64::MAX), flips(0b11));
    }

    #[test]
    fn masked_specs_label_the_mask() {
        let masked = ScheduleSpec::RandomPriority(RandomPriorityConfig {
            change_point_mask: 0b101,
            ..RandomPriorityConfig::default()
        });
        assert_eq!(masked.label(), "random-priority(d=3,mask=0b101)");
    }

    #[test]
    fn spec_compiles_to_the_right_scheduler() {
        assert!(ScheduleSpec::LockStep.scheduler(2, 1).is_none());
        assert!(ScheduleSpec::random_priority().scheduler(2, 1).is_some());
        assert_eq!(ScheduleSpec::LockStep.label(), "lock-step");
        assert_eq!(
            ScheduleSpec::random_priority().label(),
            "random-priority(d=3)"
        );
    }
}
