//! The multicore system: the master core, N slave cores, the bridge, and
//! the master runtime wired together and advanced in lock-step virtual
//! time.
//!
//! [`MultiCoreSystem`] generalizes the original OMAP5912-like dual-core
//! platform from "the slave" to "slave *i* of N": N pCore kernels, N
//! bridge endpoints over disjoint SRAM windows, one mailbox block per
//! slave, plus two cross-core coupling mechanisms the multi-slave fault
//! scenarios are built on — semaphore hand-off links
//! ([`MultiCoreSystem::link_semaphores`]) and SRAM-mirrored shared
//! variables ([`MultiCoreSystem::share_var`]). [`DualCoreSystem`] is the
//! `n = 1` special case and behaves bit-identically to the historical
//! dual-core implementation.

use std::collections::VecDeque;

use ptest_bridge::{BridgeError, BridgeLayout, CmdId, CmdResponse, MasterPort, SlaveEndpoint};
use ptest_pcore::{Kernel, KernelConfig, KernelSnapshot, SemId, SvcRequest, VarId};
use ptest_soc::{CoreId, Cycles, MailboxBank, SharedSram, SramError, TraceBuffer, VirtualClock};

use crate::mem::{IdleHorizon, MemoryModel, SharedVarBus};
use crate::preempt::{self, InterruptPlan, PreemptionSpec};
use crate::sched::{IdleAdvance, Scheduler};
use crate::thread::{MasterOp, MasterThread, ThreadId, ThreadState};

/// Configuration of a [`MultiCoreSystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of slave cores (1 = the original dual-core platform).
    pub slaves: usize,
    /// Slave-kernel configuration (applied to every slave).
    pub kernel: KernelConfig,
    /// Master scheduler quantum in cycles (time-sharing round robin).
    pub quantum: u32,
    /// Commands each slave endpoint services per doorbell interrupt.
    pub slave_budget: usize,
    /// Capacity of the system trace ring.
    pub trace_capacity: usize,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            slaves: 1,
            kernel: KernelConfig::default(),
            quantum: 5,
            slave_budget: 16,
            trace_capacity: TraceBuffer::DEFAULT_CAPACITY,
        }
    }
}

impl SystemConfig {
    /// The default configuration scaled to `slaves` slave cores.
    #[must_use]
    pub fn with_slaves(slaves: usize) -> SystemConfig {
        SystemConfig {
            slaves,
            ..SystemConfig::default()
        }
    }
}

/// One slave core: its kernel plus its bridge endpoint.
#[derive(Debug)]
struct SlaveCore {
    kernel: Kernel,
    endpoint: SlaveEndpoint,
}

/// A cross-core semaphore hand-off link: tokens posted to the *outbox*
/// semaphore on one slave are forwarded (through the bridge, one system
/// cycle later at the earliest) as posts to the *inbox* semaphore on
/// another slave. This is the mechanism behind multi-slave pipeline
/// scenarios, and the wait-for-graph detector uses the link table to
/// follow blocking dependencies across kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemLink {
    /// Slave whose outbox feeds the link.
    pub from_slave: usize,
    /// The outbox semaphore on `from_slave`.
    pub from_sem: SemId,
    /// Slave whose inbox the link posts to.
    pub to_slave: usize,
    /// The inbox semaphore on `to_slave`.
    pub to_sem: SemId,
}

/// A shared variable mirrored across all slave kernels through a window
/// in shared SRAM. See [`MultiCoreSystem::share_var`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedVar {
    /// The variable id, present in every slave's kernel.
    pub var: VarId,
    /// Byte offset of the 8-byte mirror word in shared SRAM.
    pub sram_offset: usize,
}

/// Error wiring a cross-core coupling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CouplingError {
    /// A slave index exceeds the system's slave count.
    NoSuchSlave {
        /// The offending index.
        slave: usize,
    },
    /// Both ends of a semaphore link name the same slave; intra-core
    /// hand-off uses a local semaphore directly, not the bridge.
    SameSlave,
    /// The shared-variable mirror window does not fit the SRAM.
    Sram(SramError),
}

impl std::fmt::Display for CouplingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CouplingError::NoSuchSlave { slave } => write!(f, "no slave {slave} in this system"),
            CouplingError::SameSlave => {
                write!(f, "semaphore links must connect two distinct slaves")
            }
            CouplingError::Sram(e) => write!(f, "shared-var mirror does not fit: {e}"),
        }
    }
}

impl std::error::Error for CouplingError {}

/// The simulated OMAP-like platform generalized to N slaves: ARM master
/// runtime + N DSP slave kernels + pCore-Bridge middleware + shared
/// hardware, advanced one cycle at a time by [`MultiCoreSystem::step`].
///
/// Both a scripted mode (add [`MasterThread`]s, as in Figure 1) and a
/// direct mode ([`MultiCoreSystem::issue_to`], used by pTest's committer)
/// are supported and can be mixed.
///
/// ```
/// use ptest_master::{MultiCoreSystem, SystemConfig};
/// use ptest_pcore::{Priority, Program, SvcRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = MultiCoreSystem::new(SystemConfig::with_slaves(2));
/// let prog = sys.kernel_of_mut(1).register_program(Program::exit_immediately());
/// sys.issue_to(1, SvcRequest::Create { program: prog, priority: Priority::new(5), stack_bytes: None })?;
/// sys.run(100);
/// let resps = sys.take_responses();
/// assert_eq!(resps.len(), 1);
/// assert_eq!(resps[0].slave, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MultiCoreSystem {
    clock: VirtualClock,
    sram: SharedSram,
    mailboxes: MailboxBank,
    slaves: Vec<SlaveCore>,
    master_port: MasterPort,
    threads: Vec<MasterThread>,
    run_queue: VecDeque<ThreadId>,
    current_thread: Option<ThreadId>,
    quantum_left: u32,
    inbox: Vec<CmdResponse>,
    trace: TraceBuffer,
    sem_links: Vec<SemLink>,
    shared_vars: Vec<SharedVar>,
    /// Last globally agreed value of each shared var (sync epoch state).
    shared_var_mirror: Vec<i64>,
    /// Reused per-cycle scratch of [`MultiCoreSystem::step_with`].
    sched_runnable: Vec<bool>,
    sched_advance: Vec<bool>,
    /// Reused scratch of [`MultiCoreSystem::fast_forward_idle_with`].
    sched_idle: Vec<IdleAdvance>,
    /// The installed preemption axis, if any (`None` is the inert
    /// unpreempted fast path the golden fixtures pin).
    preempt: Option<PreemptState>,
    cfg: SystemConfig,
}

/// The compiled preemption axis of one trial: the live injection queue
/// and the per-slave clock-skew rates, both pure functions of
/// `(spec, irq_seed)`.
#[derive(Debug)]
struct PreemptState {
    spec: PreemptionSpec,
    plan: InterruptPlan,
    skew_rates: Vec<u32>,
}

/// Epoch-keyed snapshot cache for
/// [`MultiCoreSystem::snapshots_into_cached`]: a kernel is re-serialized
/// only when its [change epoch](ptest_pcore::Kernel::change_epoch) moved
/// since the cache's last observation; a *clean* kernel's cached
/// snapshot just gets its pure time scalars (`now`, `ticks`,
/// `idle_ticks`) refreshed — the only fields an idle kernel moves.
///
/// A cache is bound to the system it last observed: call
/// [`SnapshotCache::reset`] before pointing it at a different (or fresh)
/// system, since new kernels restart their epochs at zero and could
/// collide with stale entries.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    snapshots: Vec<KernelSnapshot>,
    epochs: Vec<u64>,
    dirty: Vec<bool>,
}

impl SnapshotCache {
    /// An empty cache; the first observation fills it (every kernel is
    /// dirty the first time).
    #[must_use]
    pub fn new() -> SnapshotCache {
        SnapshotCache::default()
    }

    /// Invalidates the cache, keeping its buffers for reuse.
    pub fn reset(&mut self) {
        self.snapshots.clear();
        self.epochs.clear();
        self.dirty.clear();
    }

    /// The cached snapshots, in slave order — exactly what
    /// [`MultiCoreSystem::snapshots`] would return as of the last
    /// [`MultiCoreSystem::snapshots_into_cached`] call.
    #[must_use]
    pub fn snapshots(&self) -> &[KernelSnapshot] {
        &self.snapshots
    }

    /// Per-slave dirtiness of the last observation: `true` if the
    /// kernel's epoch had moved (its snapshot changed beyond the pure
    /// time scalars) since the observation before.
    #[must_use]
    pub fn dirty(&self) -> &[bool] {
        &self.dirty
    }
}

/// The original dual-core (one master, one slave) platform: the `n = 1`
/// special case of [`MultiCoreSystem`]. `SystemConfig::default()` has
/// `slaves = 1`, so every historical call site keeps constructing — and
/// behaving — exactly as before the N-slave generalization.
pub type DualCoreSystem = MultiCoreSystem;

impl MultiCoreSystem {
    /// Builds and wires a fresh system with `cfg.slaves` slave cores.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.slaves` is zero, or if the per-slave bridge windows
    /// do not fit the shared SRAM (the 250 KB OMAP window fits well over a
    /// hundred slaves).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> MultiCoreSystem {
        assert!(cfg.slaves > 0, "a system needs at least one slave core");
        let layouts = BridgeLayout::for_slaves(cfg.slaves);
        let sram = SharedSram::omap5912();
        sram.carve_windows(
            BridgeLayout::BASE_OFFSET,
            BridgeLayout::SLAVE_WINDOW_BYTES,
            cfg.slaves,
        )
        .expect("per-slave bridge windows fit the OMAP SRAM window");
        let mut sram = sram;
        let mut slaves = Vec::with_capacity(cfg.slaves);
        for (i, layout) in layouts.iter().enumerate() {
            layout
                .init(&mut sram)
                .expect("carved bridge layout fits the OMAP SRAM window");
            slaves.push(SlaveCore {
                kernel: Kernel::with_core(cfg.kernel.clone(), CoreId::slave(i)),
                endpoint: SlaveEndpoint::for_slave(*layout, i),
            });
        }
        MultiCoreSystem {
            clock: VirtualClock::new(),
            sram,
            mailboxes: MailboxBank::for_slaves(cfg.slaves),
            slaves,
            master_port: MasterPort::for_slaves(layouts),
            threads: Vec::new(),
            run_queue: VecDeque::new(),
            current_thread: None,
            quantum_left: 0,
            inbox: Vec::new(),
            trace: TraceBuffer::new(cfg.trace_capacity),
            sem_links: Vec::new(),
            shared_vars: Vec::new(),
            shared_var_mirror: Vec::new(),
            sched_runnable: Vec::new(),
            sched_advance: Vec::new(),
            sched_idle: Vec::new(),
            preempt: None,
            cfg,
        }
    }

    /// Installs (or, for an inert spec, removes) the preemption axis:
    /// per-kernel quantum slices, the seeded [`InterruptPlan`], and the
    /// seeded per-slave clock-skew rates. Everything is a pure function
    /// of `(spec, irq_seed)`, so replaying a recorded trial reinstalls
    /// the identical axis.
    ///
    /// The inert default spec compiles to the historical unpreempted
    /// platform: no quantum on any kernel, no plan, no skew — the exact
    /// code path the golden fixtures pin.
    pub fn install_preemption(&mut self, spec: &PreemptionSpec, irq_seed: u64) {
        let quantum = spec.quantum.map(|q| q.cycles);
        for slave in &mut self.slaves {
            slave.kernel.set_quantum(quantum);
        }
        if spec.is_inert() {
            self.preempt = None;
            return;
        }
        let slaves = self.slaves.len();
        let plan = spec
            .interrupts
            .as_ref()
            .map_or_else(InterruptPlan::empty, |cfg| {
                InterruptPlan::new(cfg, irq_seed, slaves)
            });
        let skew_rates = spec.clock_skew.as_ref().map_or_else(
            || vec![0; slaves],
            |cfg| preempt::skew_rates(cfg, irq_seed, slaves),
        );
        self.preempt = Some(PreemptState {
            spec: *spec,
            plan,
            skew_rates,
        });
    }

    /// The installed (non-inert) preemption spec, if any.
    #[must_use]
    pub fn preemption_spec(&self) -> Option<&PreemptionSpec> {
        self.preempt.as_ref().map(|p| &p.spec)
    }

    /// Planned interrupt injections not yet fired.
    #[must_use]
    pub fn pending_injections(&self) -> usize {
        self.preempt.as_ref().map_or(0, |p| p.plan.remaining())
    }

    /// A slave's local time at system cycle `at` under the installed
    /// clock skew (the identity when no skew is installed).
    #[must_use]
    pub fn local_time_of(&self, slave: usize, at: Cycles) -> Cycles {
        match &self.preempt {
            Some(state) => preempt::local_time(at, state.skew_rates[slave]),
            None => at,
        }
    }

    /// Total quantum preemptions across all slave kernels.
    #[must_use]
    pub fn total_preemptions(&self) -> u64 {
        self.slaves
            .iter()
            .map(|s| s.kernel.preemption_count())
            .sum()
    }

    /// Total completed ISR activations across all slave kernels.
    #[must_use]
    pub fn total_isr_runs(&self) -> u64 {
        self.slaves.iter().map(|s| s.kernel.isr_runs()).sum()
    }

    /// Total cycles spent in interrupt context across all slave kernels.
    #[must_use]
    pub fn total_isr_cycles(&self) -> u64 {
        self.slaves.iter().map(|s| s.kernel.isr_cycles()).sum()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Number of slave cores.
    #[must_use]
    pub fn slave_count(&self) -> usize {
        self.slaves.len()
    }

    /// Read access to slave 0's kernel (the dual-core legacy accessor;
    /// see [`MultiCoreSystem::kernel_of`] for the general form).
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        self.kernel_of(0)
    }

    /// Mutable access to slave 0's kernel for *scenario setup only*.
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        self.kernel_of_mut(0)
    }

    /// Read access to slave `slave`'s kernel (for assertions and the bug
    /// detector's shared-memory debug window).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range slave index.
    #[must_use]
    pub fn kernel_of(&self, slave: usize) -> &Kernel {
        &self.slaves[slave].kernel
    }

    /// Mutable access to slave `slave`'s kernel for *scenario setup only*
    /// (registering programs, creating semaphores/mutexes before the test
    /// starts). Runtime interaction must go through
    /// [`MultiCoreSystem::issue_to`].
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range slave index.
    pub fn kernel_of_mut(&mut self, slave: usize) -> &mut Kernel {
        &mut self.slaves[slave].kernel
    }

    /// The system trace (master-side events; each kernel keeps its own).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Registers a cross-core semaphore hand-off: tokens posted to
    /// `from_sem` on `from_slave` are forwarded as posts to `to_sem` on
    /// `to_slave` during the next system cycle. Links are drained in
    /// registration order, deterministically.
    ///
    /// # Errors
    ///
    /// [`CouplingError::NoSuchSlave`] for an out-of-range slave and
    /// [`CouplingError::SameSlave`] if both ends name the same slave —
    /// the bridge only mediates *inter*-core traffic.
    pub fn link_semaphores(
        &mut self,
        from_slave: usize,
        from_sem: SemId,
        to_slave: usize,
        to_sem: SemId,
    ) -> Result<(), CouplingError> {
        for slave in [from_slave, to_slave] {
            if slave >= self.slaves.len() {
                return Err(CouplingError::NoSuchSlave { slave });
            }
        }
        if from_slave == to_slave {
            return Err(CouplingError::SameSlave);
        }
        self.sem_links.push(SemLink {
            from_slave,
            from_sem,
            to_slave,
            to_sem,
        });
        Ok(())
    }

    /// The registered cross-core semaphore links.
    #[must_use]
    pub fn sem_links(&self) -> &[SemLink] {
        &self.sem_links
    }

    /// Mirrors shared variable `var` across *all* slave kernels through an
    /// 8-byte window at `sram_offset` in shared SRAM. Once per system
    /// cycle the mirror adopts, in ascending slave order, any local value
    /// that diverged from the last agreed value, then writes the winner
    /// back to the SRAM word and into every kernel. Two slaves updating
    /// within the same cycle therefore race: the higher-indexed slave's
    /// write wins and the other update is lost — the classic shared-memory
    /// read-modify-write hazard, made deterministic.
    ///
    /// # Errors
    ///
    /// [`CouplingError::Sram`] if the 8-byte mirror word does not fit the
    /// SRAM.
    pub fn share_var(&mut self, var: VarId, sram_offset: usize) -> Result<(), CouplingError> {
        let seed = self.kernel_of(0).var(var).unwrap_or(0);
        self.sram
            .write_bytes(sram_offset, &seed.to_le_bytes())
            .map_err(CouplingError::Sram)?;
        for slave in &mut self.slaves {
            slave.kernel.set_var(var, seed);
        }
        self.shared_vars.push(SharedVar { var, sram_offset });
        self.shared_var_mirror.push(seed);
        Ok(())
    }

    /// The registered SRAM-mirrored shared variables.
    #[must_use]
    pub fn shared_vars(&self) -> &[SharedVar] {
        &self.shared_vars
    }

    /// Adds a master thread; it enters the run queue immediately.
    pub fn add_thread(&mut self, name: impl Into<String>, ops: Vec<MasterOp>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u16);
        self.threads.push(MasterThread::new(id, name, ops));
        self.run_queue.push_back(id);
        id
    }

    /// Read access to a thread.
    #[must_use]
    pub fn thread(&self, id: ThreadId) -> Option<&MasterThread> {
        self.threads.get(usize::from(id.0))
    }

    /// Whether every scripted thread has finished.
    #[must_use]
    pub fn threads_done(&self) -> bool {
        self.threads.iter().all(MasterThread::is_done)
    }

    /// Issues a remote command directly to slave 0 (the dual-core legacy
    /// path), stamped at the current virtual time.
    ///
    /// # Errors
    ///
    /// As for [`MultiCoreSystem::issue_to`].
    pub fn issue(&mut self, req: SvcRequest) -> Result<CmdId, BridgeError> {
        self.issue_to(0, req)
    }

    /// Issues a remote command directly to slave `slave` (the committer's
    /// path), stamped at the current virtual time.
    ///
    /// # Errors
    ///
    /// [`BridgeError::NoSuchSlave`] for an out-of-range slave;
    /// [`BridgeError::CommandRingFull`] if 32 commands are in flight on
    /// that slave's lane.
    pub fn issue_to(&mut self, slave: usize, req: SvcRequest) -> Result<CmdId, BridgeError> {
        let now = self.clock.now();
        let id = self
            .master_port
            .issue_to(slave, &mut self.sram, &mut self.mailboxes, req, now)?;
        if slave == 0 {
            self.trace
                .record(now, CoreId::Arm, "cmd", format!("{id} {req:?}"));
        } else {
            self.trace.record(
                now,
                CoreId::Arm,
                "cmd",
                format!("{id} ->{} {req:?}", CoreId::slave(slave)),
            );
        }
        Ok(id)
    }

    /// Drains responses that no scripted thread claimed (fire-and-forget
    /// and committer-issued commands).
    pub fn take_responses(&mut self) -> Vec<CmdResponse> {
        std::mem::take(&mut self.inbox)
    }

    /// Drains pending responses in delivery order while keeping the
    /// inbox's buffer — the allocation-free variant of
    /// [`MultiCoreSystem::take_responses`] the committer polls every
    /// cycle.
    pub fn drain_responses(&mut self) -> std::vec::Drain<'_, CmdResponse> {
        self.inbox.drain(..)
    }

    /// Commands outstanding longer than `timeout` (any slave).
    #[must_use]
    pub fn overdue(&self, timeout: Cycles) -> Vec<CmdId> {
        self.master_port.overdue(self.clock.now(), timeout)
    }

    /// Commands outstanding longer than `timeout` on slave `slave`'s lane.
    #[must_use]
    pub fn overdue_for(&self, slave: usize, timeout: Cycles) -> Vec<CmdId> {
        self.master_port
            .overdue_for(slave, self.clock.now(), timeout)
    }

    /// Number of commands outstanding longer than `timeout` on slave
    /// `slave`'s lane, without materializing the id list — the detector's
    /// per-observation check.
    #[must_use]
    pub fn overdue_count_for(&self, slave: usize, timeout: Cycles) -> usize {
        self.master_port
            .overdue_count_for(slave, self.clock.now(), timeout)
    }

    /// Number of commands awaiting responses (any slave).
    #[must_use]
    pub fn pending_commands(&self) -> usize {
        self.master_port.pending_count()
    }

    /// A snapshot of slave 0's kernel (the dual-core legacy accessor).
    #[must_use]
    pub fn snapshot(&self) -> KernelSnapshot {
        self.snapshot_of(0)
    }

    /// A snapshot of slave `slave`'s kernel (the detector's debug window).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range slave index.
    #[must_use]
    pub fn snapshot_of(&self, slave: usize) -> KernelSnapshot {
        self.slaves[slave].kernel.snapshot()
    }

    /// Snapshots of every slave kernel, in slave order.
    #[must_use]
    pub fn snapshots(&self) -> Vec<KernelSnapshot> {
        self.slaves.iter().map(|s| s.kernel.snapshot()).collect()
    }

    /// [`MultiCoreSystem::snapshots`] into a caller-owned vector: one
    /// batched pass over every kernel, reusing the buffers of the
    /// previous observation instead of allocating per-kernel snapshots
    /// each call.
    pub fn snapshots_into(&self, out: &mut Vec<KernelSnapshot>) {
        out.resize_with(self.slaves.len(), KernelSnapshot::default);
        for (slave, snap) in self.slaves.iter().zip(out.iter_mut()) {
            slave.kernel.snapshot_into(snap);
        }
    }

    /// [`MultiCoreSystem::snapshots_into`] through an epoch-keyed
    /// [`SnapshotCache`]: kernels whose change epoch is unchanged since
    /// the cache's last observation skip re-serialization entirely (only
    /// their time scalars are refreshed). `cache.snapshots()` afterwards
    /// equals what a fresh [`MultiCoreSystem::snapshots_into`] would
    /// have produced.
    pub fn snapshots_into_cached(&self, cache: &mut SnapshotCache) {
        let n = self.slaves.len();
        cache.snapshots.resize_with(n, KernelSnapshot::default);
        cache.epochs.resize(n, u64::MAX);
        cache.dirty.resize(n, true);
        for (i, slave) in self.slaves.iter().enumerate() {
            let epoch = slave.kernel.change_epoch();
            if cache.epochs[i] == epoch {
                slave.kernel.scalars_into(&mut cache.snapshots[i]);
                cache.dirty[i] = false;
            } else {
                slave.kernel.snapshot_into(&mut cache.snapshots[i]);
                cache.epochs[i] = epoch;
                cache.dirty[i] = true;
            }
        }
    }

    /// The platform's idle-cycle fast-forward horizon: the earliest
    /// future cycle at which anything observable can happen, assuming no
    /// external input arrives in the meantime.
    ///
    /// * [`IdleHorizon::Unknown`] — the platform is *not* quiescent
    ///   (dispatchable kernel work, in-flight bridge or mailbox traffic,
    ///   pending semaphore hand-offs or fences, un-mirrored shared-var
    ///   stores, or a live master thread); it must be stepped cycle by
    ///   cycle.
    /// * [`IdleHorizon::Until`]`(c)` — every cycle strictly before `c` is
    ///   a pure idle cycle (skippable via
    ///   [`MultiCoreSystem::fast_forward_idle`]); `c` is the earliest
    ///   sleeper deadline (kernel task or master thread).
    /// * [`IdleHorizon::Unbounded`] — quiescent with nothing scheduled
    ///   to wake: every future cycle is a pure idle cycle.
    ///
    /// The active [`MemoryModel`]'s own
    /// [`idle_horizon`](MemoryModel::idle_horizon) must be intersected
    /// by the caller; this method only covers the platform.
    #[must_use]
    pub fn quiescent_horizon(&self) -> IdleHorizon {
        let next = Cycles::new(self.clock.now().get() + 1);
        // Disqualifiers: work or traffic that can mutate state on any
        // upcoming cycle in ways plain idle bookkeeping cannot replay.
        if self.current_thread.is_some() || !self.inbox.is_empty() || self.mailboxes.any_pending() {
            return IdleHorizon::Unknown;
        }
        for (i, slave) in self.slaves.iter().enumerate() {
            // Under clock skew a slave's next tick carries its *local*
            // time, so dispatchability (sleeper deadlines, pending
            // unmasked interrupts, an active ISR frame, quantum-expiry
            // rotations — all kernel-local) is probed at local time.
            let local_next = self.local_time_of(i, next);
            if slave.kernel.has_dispatchable_work(local_next)
                || slave.kernel.pending_fence_count() > 0
            {
                return IdleHorizon::Unknown;
            }
        }
        for link in &self.sem_links {
            if self.slaves[link.from_slave]
                .kernel
                .semaphore_count(link.from_sem)
                .unwrap_or(0)
                > 0
            {
                return IdleHorizon::Unknown;
            }
        }
        for (i, shared) in self.shared_vars.iter().enumerate() {
            let agreed = self.shared_var_mirror[i];
            if self
                .slaves
                .iter()
                .any(|s| s.kernel.var(shared.var).unwrap_or(agreed) != agreed)
            {
                return IdleHorizon::Unknown;
            }
        }
        // Candidates: the only self-timed future events are sleepers.
        let mut horizon: Option<u64> = None;
        let mut merge = |at: u64| {
            horizon = Some(horizon.map_or(at, |h| h.min(at)));
        };
        for (i, slave) in self.slaves.iter().enumerate() {
            if let Some(at) = slave.kernel.next_sleeper_wake() {
                // Kernel sleeper deadlines are local-time; convert back
                // to the system cycle that first reaches them.
                let rate = self.preempt.as_ref().map_or(0, |p| p.skew_rates[i]);
                merge(preempt::system_time_for(at, rate));
            }
        }
        // A planned interrupt injection is an observable future event:
        // never certify an idle window that crosses its firing cycle.
        if let Some(state) = &self.preempt {
            if let Some(fire) = state.plan.next_fire() {
                merge(fire.max(next.get()));
            }
        }
        for t in &self.threads {
            match t.state {
                // A ready thread acts next cycle (it just isn't current
                // for one rotation); waiting threads wake only through
                // response traffic, which is disqualified above.
                ThreadState::Ready => return IdleHorizon::Unknown,
                ThreadState::Sleeping { until } => merge(until),
                ThreadState::Waiting(_) | ThreadState::Done => {}
            }
        }
        match horizon {
            Some(at) => IdleHorizon::Until(at),
            None => IdleHorizon::Unbounded,
        }
    }

    /// Batch-advances the platform across `count` cycles known to be
    /// idle (a window certified by
    /// [`MultiCoreSystem::quiescent_horizon`]) on the lock-step path:
    /// the clock jumps and every kernel applies the pure idle-tick
    /// bookkeeping arithmetically. Bit-identical to calling
    /// [`MultiCoreSystem::step`] `count` times under the quiescence
    /// precondition.
    pub fn fast_forward_idle(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        self.clock.advance(Cycles::new(count));
        let now = self.clock.now();
        for (i, slave) in self.slaves.iter_mut().enumerate() {
            // Each kernel's final timestamp is its local time — exactly
            // what the last per-cycle tick would have handed it.
            let lnow = match &self.preempt {
                Some(state) => preempt::local_time(now, state.skew_rates[i]),
                None => now,
            };
            slave.kernel.fast_forward_idle(count, lnow);
        }
    }

    /// The scheduled counterpart of
    /// [`MultiCoreSystem::fast_forward_idle`]: the scheduler plans the
    /// whole idle window in one call (its internal state advances
    /// exactly as `count` all-idle [`Scheduler::plan`] calls would), and
    /// each kernel applies the idle ticks of precisely the cycles the
    /// scheduler would have advanced it in. Bit-identical to calling
    /// [`MultiCoreSystem::step_with`] `count` times under the
    /// quiescence precondition.
    pub fn fast_forward_idle_with(&mut self, count: u64, scheduler: &mut dyn Scheduler) {
        if count == 0 {
            return;
        }
        let start = Cycles::new(self.clock.now().get() + 1);
        let mut runnable = std::mem::take(&mut self.sched_runnable);
        let mut advance = std::mem::take(&mut self.sched_advance);
        let mut idle = std::mem::take(&mut self.sched_idle);
        runnable.clear();
        runnable.resize(self.slaves.len(), false);
        advance.clear();
        advance.resize(self.slaves.len(), true);
        idle.clear();
        idle.resize(self.slaves.len(), IdleAdvance::default());
        scheduler.skip_idle_cycles(start, count, &runnable, &mut advance, &mut idle);
        self.clock.advance(Cycles::new(count));
        for (i, (slave, adv)) in self.slaves.iter_mut().zip(idle.iter()).enumerate() {
            if let Some(last) = adv.last {
                let llast = match &self.preempt {
                    Some(state) => preempt::local_time(last, state.skew_rates[i]),
                    None => last,
                };
                slave.kernel.fast_forward_idle(adv.ticks, llast);
            }
        }
        self.sched_runnable = runnable;
        self.sched_advance = advance;
        self.sched_idle = idle;
    }

    /// Advances the whole platform by one cycle: per-slave interrupt
    /// servicing and one kernel cycle each, cross-core coupling
    /// (semaphore hand-off forwarding, shared-variable mirroring),
    /// response delivery, and one master-thread step under the
    /// round-robin quantum.
    pub fn step(&mut self) {
        self.step_explored(None, None);
    }

    /// [`MultiCoreSystem::step`] under a [`Scheduler`](crate::sched::Scheduler):
    /// the scheduler
    /// decides which slave kernels execute a task cycle. Doorbell
    /// interrupt servicing, cross-core coupling and the master side are
    /// *not* schedulable — they run every cycle on every slave exactly
    /// as in [`MultiCoreSystem::step`], the way interrupts preempt task
    /// execution on the real platform.
    ///
    /// Driving a system with [`LockStepScheduler`](crate::sched::LockStepScheduler)
    /// is bit-identical to calling [`MultiCoreSystem::step`].
    pub fn step_with(&mut self, scheduler: &mut dyn crate::sched::Scheduler) {
        self.step_explored(Some(scheduler), None);
    }

    /// [`MultiCoreSystem::step`] under a [`MemoryModel`]: the model
    /// replaces the built-in sequentially-consistent mirroring epoch as
    /// the shared-variable propagation step. Everything else — interrupt
    /// servicing, semaphore links, response delivery, the master side —
    /// is unchanged. Driving a system whose model delivers every store
    /// with zero delay is observably equivalent to
    /// [`MultiCoreSystem::step`] (up to write-write race resolution; see
    /// [`crate::mem`]).
    pub fn step_with_memory(&mut self, memory: &mut dyn MemoryModel) {
        self.step_explored(None, Some(memory));
    }

    /// The single platform-cycle entry point: one cycle under an
    /// optional [`Scheduler`] and an optional [`MemoryModel`]. `None` on
    /// either axis compiles to that axis's historical fast path — no
    /// runnable scan or per-cycle mask without a scheduler, the
    /// sequentially-consistent mirroring epoch without a model — so
    /// `step_explored(None, None)` is bit-identical to the pre-refactor
    /// [`MultiCoreSystem::step`]. The [`step`](MultiCoreSystem::step) /
    /// [`step_with`](MultiCoreSystem::step_with) /
    /// [`step_with_memory`](MultiCoreSystem::step_with_memory) trio are
    /// thin wrappers over this.
    pub fn step_explored(
        &mut self,
        scheduler: Option<&mut (dyn crate::sched::Scheduler + '_)>,
        memory: Option<&mut (dyn MemoryModel + '_)>,
    ) {
        match scheduler {
            None => self.step_core(None, memory),
            Some(scheduler) => self.step_scheduled(scheduler, memory),
        }
    }

    /// The scheduled cycle: runnable scan, plan, masked step — with the
    /// shared-variable propagation step picked by `memory`.
    fn step_scheduled(
        &mut self,
        scheduler: &mut dyn crate::sched::Scheduler,
        memory: Option<&mut (dyn MemoryModel + '_)>,
    ) {
        let next = Cycles::new(self.clock.now().get() + 1);
        let mut runnable = std::mem::take(&mut self.sched_runnable);
        let mut advance = std::mem::take(&mut self.sched_advance);
        runnable.clear();
        runnable.extend(self.slaves.iter().enumerate().map(|(i, s)| {
            let local_next = match &self.preempt {
                Some(state) => preempt::local_time(next, state.skew_rates[i]),
                None => next,
            };
            s.kernel.has_dispatchable_work(local_next)
        }));
        advance.clear();
        advance.resize(self.slaves.len(), true);
        scheduler.plan(next, &runnable, &mut advance);
        self.step_core(Some(&advance), memory);
        self.sched_runnable = runnable;
        self.sched_advance = advance;
    }

    /// One platform cycle; `mask` (if any) gates which slave kernels
    /// execute their task cycle (`None` means everyone — the lock-step
    /// fast path with no per-cycle mask or runnable scan at all), and
    /// `memory` (if any) replaces the sequentially-consistent mirroring
    /// epoch with an explored [`MemoryModel`].
    fn step_core(&mut self, mask: Option<&[bool]>, memory: Option<&mut (dyn MemoryModel + '_)>) {
        self.clock.tick();
        let now = self.clock.now();

        // --- Injected interrupts: raise every planned event whose cycle
        //     has arrived (taken by the kernel on this very tick, like a
        //     hardware line going high just before the core's cycle).
        if let Some(state) = &mut self.preempt {
            while let Some(ev) = state.plan.pop_due(now.get()) {
                let accepted = self.slaves[ev.slave].kernel.raise_interrupt();
                let detail = if accepted {
                    format!("planned @{}", ev.cycle)
                } else {
                    format!("planned @{} refused (no handler)", ev.cycle)
                };
                self.trace
                    .record(now, CoreId::slave(ev.slave), "irq-inject", detail);
            }
        }

        // --- DSP side: doorbell interrupts preempt task execution (and
        //     are never gated by the schedule). Each slave sees its own
        //     local time (the identity without installed clock skew).
        let budget = self.cfg.slave_budget;
        for (i, slave) in self.slaves.iter_mut().enumerate() {
            let lnow = match &self.preempt {
                Some(state) => preempt::local_time(now, state.skew_rates[i]),
                None => now,
            };
            slave.endpoint.service(
                &mut self.sram,
                &mut self.mailboxes,
                &mut slave.kernel,
                lnow,
                budget,
            );
            if mask.is_none_or(|m| m[i]) {
                let _ = slave.kernel.tick(lnow);
            }
        }

        // --- Bridge side: cross-core coupling (no-ops when unused).
        self.forward_sem_links(now);
        match memory {
            // SeqCst: the original epoch, untouched — the fast path that
            // keeps unexplored trials byte-identical to the pre-refactor
            // platform.
            None => self.sync_shared_vars(),
            Some(model) => {
                let mut bus = SystemBus {
                    slaves: &mut self.slaves,
                    sram: &mut self.sram,
                    shared_vars: &self.shared_vars,
                    mirror: &mut self.shared_var_mirror,
                };
                model.sync(now, &mut bus);
            }
        }

        // --- ARM side: deliver responses, then run one thread op.
        let responses = self
            .master_port
            .poll_responses(&mut self.sram, &mut self.mailboxes, now);
        for resp in responses {
            let claimed = self.threads.iter_mut().any(|t| t.deliver(&resp));
            if !claimed {
                self.inbox.push(resp);
            }
        }
        self.step_master(now);
    }

    /// Drains every link's outbox into its inbox, in link order.
    fn forward_sem_links(&mut self, now: Cycles) {
        for i in 0..self.sem_links.len() {
            let link = self.sem_links[i];
            loop {
                if !self.slaves[link.from_slave]
                    .kernel
                    .take_semaphore_token(link.from_sem)
                {
                    break;
                }
                self.slaves[link.to_slave]
                    .kernel
                    .post_semaphore_external(link.to_sem);
                self.trace.record(
                    now,
                    CoreId::slave(link.from_slave),
                    "link",
                    format!(
                        "{} -> {}:{}",
                        link.from_sem,
                        CoreId::slave(link.to_slave),
                        link.to_sem
                    ),
                );
            }
        }
    }

    /// One mirroring epoch per cycle: adopt divergent local values in
    /// ascending slave order (highest index wins a same-cycle race), then
    /// publish the winner through the SRAM word to every kernel.
    fn sync_shared_vars(&mut self) {
        for i in 0..self.shared_vars.len() {
            let SharedVar { var, sram_offset } = self.shared_vars[i];
            let mut agreed = self.shared_var_mirror[i];
            for slave in &self.slaves {
                let local = slave.kernel.var(var).unwrap_or(agreed);
                if local != self.shared_var_mirror[i] {
                    agreed = local;
                }
            }
            // No divergence means every kernel already holds the mirror
            // value (it was published last epoch) — skip the writes.
            if agreed != self.shared_var_mirror[i] {
                self.shared_var_mirror[i] = agreed;
                let _ = self.sram.write_bytes(sram_offset, &agreed.to_le_bytes());
                for slave in &mut self.slaves {
                    slave.kernel.set_var(var, agreed);
                }
            }
        }
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until the platform is quiescent — all scripted threads done,
    /// no commands in flight, and every kernel idle — or `max_cycles`
    /// elapse. Returns `true` if quiescence was reached.
    ///
    /// Systems containing spinning or deadlocked tasks never quiesce;
    /// callers rely on the cycle bound (that non-quiescence is exactly
    /// what the bug detector looks for).
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            self.step();
            if self.threads_done() && self.pending_commands() == 0 && self.kernels_idle() {
                return true;
            }
        }
        false
    }

    fn kernels_idle(&self) -> bool {
        self.slaves.iter().all(|s| {
            let snap = s.kernel.snapshot();
            snap.panic.is_none()
                && snap
                    .tasks
                    .iter()
                    .all(|t| matches!(t.state, ptest_pcore::TaskState::Terminated(_)))
        })
    }

    /// Whether any slave kernel has crashed.
    #[must_use]
    pub fn slave_crashed(&self) -> bool {
        self.slaves.iter().any(|s| s.kernel.panic().is_some())
    }

    /// Whether slave `slave`'s kernel has crashed.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range slave index.
    #[must_use]
    pub fn slave_crashed_at(&self, slave: usize) -> bool {
        self.slaves[slave].kernel.panic().is_some()
    }

    fn step_master(&mut self, now: Cycles) {
        // Pick (or keep) the current thread under the quantum policy.
        let now_raw = now.get();
        let runnable_current = self
            .current_thread
            .and_then(|id| self.threads.get(usize::from(id.0)))
            .is_some_and(|t| t.is_runnable(now_raw));
        if !runnable_current || self.quantum_left == 0 {
            if let Some(id) = self.current_thread.take() {
                let t = &self.threads[usize::from(id.0)];
                if !t.is_done() {
                    self.run_queue.push_back(id);
                }
            }
            // Rotate to the next runnable thread.
            let mut rotations = self.run_queue.len();
            while rotations > 0 {
                rotations -= 1;
                let Some(id) = self.run_queue.pop_front() else {
                    break;
                };
                let t = &self.threads[usize::from(id.0)];
                if t.is_done() {
                    continue;
                }
                if t.is_runnable(now_raw) {
                    self.current_thread = Some(id);
                    self.quantum_left = self.cfg.quantum;
                    break;
                }
                self.run_queue.push_back(id);
            }
        }
        let Some(id) = self.current_thread else {
            return;
        };
        self.quantum_left = self.quantum_left.saturating_sub(1);
        self.run_thread_op(id, now);
    }

    fn run_thread_op(&mut self, id: ThreadId, now: Cycles) {
        let idx = usize::from(id.0);
        // Multi-cycle compute in progress?
        {
            let t = &mut self.threads[idx];
            if t.state == ThreadState::Ready && t.compute_remaining > 0 {
                t.compute_remaining -= 1;
                return;
            }
            if let ThreadState::Sleeping { until } = t.state {
                if until <= now.get() {
                    t.state = ThreadState::Ready;
                } else {
                    return;
                }
            }
            if t.state != ThreadState::Ready {
                return;
            }
        }
        let op = self.threads[idx].current_op();
        match op {
            None | Some(MasterOp::Done) => {
                let t = &mut self.threads[idx];
                t.state = ThreadState::Done;
                if self.current_thread == Some(id) {
                    self.current_thread = None;
                }
                self.trace
                    .record(now, CoreId::Arm, "thread", format!("{} done", t.name));
            }
            Some(MasterOp::Issue(req)) => {
                match self
                    .master_port
                    .issue(&mut self.sram, &mut self.mailboxes, req, now)
                {
                    Ok(cmd) => {
                        let t = &mut self.threads[idx];
                        t.pc += 1;
                        t.ops_retired += 1;
                        self.trace.record(
                            now,
                            CoreId::Arm,
                            "cmd",
                            format!("{} issues {cmd} {req:?}", t.name),
                        );
                    }
                    Err(_) => { /* ring full: retry next cycle */ }
                }
            }
            Some(MasterOp::IssueAndWait(req)) => {
                match self
                    .master_port
                    .issue(&mut self.sram, &mut self.mailboxes, req, now)
                {
                    Ok(cmd) => {
                        let t = &mut self.threads[idx];
                        t.pc += 1;
                        t.ops_retired += 1;
                        t.state = ThreadState::Waiting(cmd);
                        self.trace.record(
                            now,
                            CoreId::Arm,
                            "cmd",
                            format!("{} issues {cmd} {req:?} (waits)", t.name),
                        );
                    }
                    Err(_) => { /* ring full: retry next cycle */ }
                }
            }
            Some(MasterOp::Compute(n)) => {
                let t = &mut self.threads[idx];
                t.compute_remaining = u64::from(n.saturating_sub(1));
                t.pc += 1;
                t.ops_retired += 1;
            }
            Some(MasterOp::SleepFor(n)) => {
                let t = &mut self.threads[idx];
                t.state = ThreadState::Sleeping {
                    until: now.get() + u64::from(n),
                };
                t.pc += 1;
                t.ops_retired += 1;
            }
        }
    }
}

/// The platform's [`SharedVarBus`]: split borrows over the slave
/// kernels, the shared SRAM, and the mirror bookkeeping, handed to the
/// active [`MemoryModel`] once per cycle in place of
/// `sync_shared_vars`. Shared indices address `shared_vars` in
/// registration order.
struct SystemBus<'a> {
    slaves: &'a mut [SlaveCore],
    sram: &'a mut SharedSram,
    shared_vars: &'a [SharedVar],
    mirror: &'a mut [i64],
}

impl SharedVarBus for SystemBus<'_> {
    fn slaves(&self) -> usize {
        self.slaves.len()
    }

    fn shared_count(&self) -> usize {
        self.shared_vars.len()
    }

    fn local(&self, slave: usize, idx: usize) -> i64 {
        self.slaves[slave]
            .kernel
            .var(self.shared_vars[idx].var)
            .unwrap_or(self.mirror[idx])
    }

    fn agreed(&self, idx: usize) -> i64 {
        self.mirror[idx]
    }

    fn set_local(&mut self, slave: usize, idx: usize, value: i64) {
        self.slaves[slave]
            .kernel
            .set_var(self.shared_vars[idx].var, value);
    }

    fn publish(&mut self, idx: usize, value: i64) {
        self.mirror[idx] = value;
        let _ = self
            .sram
            .write_bytes(self.shared_vars[idx].sram_offset, &value.to_le_bytes());
    }

    fn take_fences(&mut self, slave: usize) -> u64 {
        self.slaves[slave].kernel.take_fences()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{Op, Priority, Program, ProgramId, SvcReply, TaskState, VarId};

    fn sys() -> DualCoreSystem {
        DualCoreSystem::new(SystemConfig::default())
    }

    fn exit_prog(s: &mut DualCoreSystem) -> ProgramId {
        s.kernel_mut().register_program(Program::exit_immediately())
    }

    #[test]
    fn committer_path_roundtrip() {
        let mut s = sys();
        let p = exit_prog(&mut s);
        s.issue(SvcRequest::Create {
            program: p,
            priority: Priority::new(5),
            stack_bytes: None,
        })
        .unwrap();
        s.run(50);
        let resps = s.take_responses();
        assert_eq!(resps.len(), 1);
        assert!(matches!(resps[0].result, Ok(SvcReply::Created(_))));
        assert!(s.run_until_quiescent(1_000));
    }

    #[test]
    fn scripted_thread_creates_and_finishes() {
        let mut s = sys();
        let p = exit_prog(&mut s);
        let m1 = s.add_thread(
            "M1",
            vec![
                MasterOp::IssueAndWait(SvcRequest::Create {
                    program: p,
                    priority: Priority::new(5),
                    stack_bytes: None,
                }),
                MasterOp::Done,
            ],
        );
        assert!(s.run_until_quiescent(5_000));
        let t = s.thread(m1).unwrap();
        assert!(t.is_done());
        assert!(t.bound_task.is_some());
        assert!(matches!(
            t.last_response.as_ref().unwrap().result,
            Ok(SvcReply::Created(_))
        ));
    }

    #[test]
    fn two_threads_time_share() {
        let mut s = sys();
        let m1 = s.add_thread("M1", vec![MasterOp::Compute(50), MasterOp::Done]);
        let m2 = s.add_thread("M2", vec![MasterOp::Compute(50), MasterOp::Done]);
        s.run(40);
        // With a quantum of 5, both threads must have made progress.
        let t1 = s.thread(m1).unwrap();
        let t2 = s.thread(m2).unwrap();
        assert!(t1.ops_retired > 0 || t1.compute_remaining < 50);
        assert!(t2.ops_retired > 0 || t2.compute_remaining < 50);
        assert!(s.run_until_quiescent(200));
    }

    #[test]
    fn poke_peek_via_commands() {
        let mut s = sys();
        s.issue(SvcRequest::PokeVar {
            var: VarId(2),
            value: 123,
        })
        .unwrap();
        s.run(20);
        s.issue(SvcRequest::PeekVar { var: VarId(2) }).unwrap();
        s.run(20);
        let resps = s.take_responses();
        assert_eq!(resps.len(), 2);
        assert_eq!(resps[1].result, Ok(SvcReply::Value(123)));
    }

    #[test]
    fn slave_task_actually_runs() {
        let mut s = sys();
        let prog = s.kernel_mut().register_program(
            Program::new(vec![
                ptest_pcore::Op::WriteVar {
                    var: VarId(0),
                    value: 7,
                },
                ptest_pcore::Op::Exit,
            ])
            .unwrap(),
        );
        s.issue(SvcRequest::Create {
            program: prog,
            priority: Priority::new(3),
            stack_bytes: None,
        })
        .unwrap();
        assert!(s.run_until_quiescent(1_000));
        assert_eq!(s.kernel().var(VarId(0)), Some(7));
    }

    #[test]
    fn crash_detected_via_timeouts() {
        let mut cfg = SystemConfig::default();
        cfg.kernel.heap_bytes = 1024; // two creates exceed this
        let mut s = DualCoreSystem::new(cfg);
        let p = exit_prog(&mut s);
        // Park a long-running task so its memory stays live.
        let hog = s.kernel_mut().register_program(
            Program::new(vec![
                ptest_pcore::Op::Compute(1_000_000),
                ptest_pcore::Op::Exit,
            ])
            .unwrap(),
        );
        s.issue(SvcRequest::Create {
            program: hog,
            priority: Priority::new(1),
            stack_bytes: None,
        })
        .unwrap();
        s.run(20);
        s.issue(SvcRequest::Create {
            program: p,
            priority: Priority::new(2),
            stack_bytes: None,
        })
        .unwrap();
        s.run(20);
        assert!(s.slave_crashed(), "second create must OOM-panic the kernel");
        assert!(s.slave_crashed_at(0));
        // Commands issued after the crash never complete.
        s.issue(SvcRequest::PeekVar { var: VarId(0) }).unwrap();
        s.run(600);
        assert_eq!(s.overdue(Cycles::new(500)).len(), 1);
        assert_eq!(s.overdue_for(0, Cycles::new(500)).len(), 1);
    }

    #[test]
    fn fire_and_forget_issue_lands_in_inbox() {
        let mut s = sys();
        let p = exit_prog(&mut s);
        s.add_thread(
            "M1",
            vec![
                MasterOp::Issue(SvcRequest::Create {
                    program: p,
                    priority: Priority::new(5),
                    stack_bytes: None,
                }),
                MasterOp::Done,
            ],
        );
        assert!(s.run_until_quiescent(5_000));
        // The thread never waited, so the response went to the inbox.
        let resps = s.take_responses();
        assert_eq!(resps.len(), 1);
        assert!(matches!(resps[0].result, Ok(SvcReply::Created(_))));
    }

    #[test]
    fn sleeping_thread_resumes_on_schedule() {
        let mut s = sys();
        let m = s.add_thread(
            "M1",
            vec![
                MasterOp::SleepFor(200),
                MasterOp::Compute(5),
                MasterOp::Done,
            ],
        );
        s.run(100);
        assert!(!s.thread(m).unwrap().is_done(), "still sleeping");
        s.run(400);
        assert!(s.thread(m).unwrap().is_done());
    }

    #[test]
    fn quiescence_not_reached_by_spinning_task() {
        let mut s = sys();
        let spin = s
            .kernel_mut()
            .register_program(Program::new(vec![ptest_pcore::Op::Jump(0)]).unwrap());
        s.issue(SvcRequest::Create {
            program: spin,
            priority: Priority::new(3),
            stack_bytes: None,
        })
        .unwrap();
        assert!(!s.run_until_quiescent(2_000));
        let snap = s.snapshot();
        assert_eq!(snap.live_tasks(), 1);
        assert!(matches!(snap.tasks[0].state, TaskState::Ready));
    }

    // --- multi-slave behaviour -------------------------------------------

    fn create_on(s: &mut MultiCoreSystem, slave: usize, prog: ProgramId, prio: u8) {
        s.issue_to(
            slave,
            SvcRequest::Create {
                program: prog,
                priority: Priority::new(prio),
                stack_bytes: None,
            },
        )
        .unwrap();
    }

    #[test]
    fn slaves_run_isolated_kernels() {
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(3));
        assert_eq!(s.slave_count(), 3);
        for slave in 0..3 {
            let prog = s.kernel_of_mut(slave).register_program(
                Program::new(vec![
                    Op::WriteVar {
                        var: VarId(0),
                        value: slave as i64 + 1,
                    },
                    Op::Exit,
                ])
                .unwrap(),
            );
            create_on(&mut s, slave, prog, 5);
        }
        assert!(s.run_until_quiescent(5_000));
        for slave in 0..3 {
            assert_eq!(
                s.kernel_of(slave).var(VarId(0)),
                Some(slave as i64 + 1),
                "each kernel keeps its own variable store"
            );
            assert_eq!(s.kernel_of(slave).core(), CoreId::slave(slave));
        }
        assert_eq!(s.take_responses().len(), 3);
        assert_eq!(s.snapshots().len(), 3);
    }

    #[test]
    fn one_crashed_slave_does_not_kill_the_others() {
        let mut cfg = SystemConfig::with_slaves(2);
        cfg.kernel.heap_bytes = 1024; // one create fits, two do not
        let mut s = MultiCoreSystem::new(cfg);
        let hog = s
            .kernel_of_mut(0)
            .register_program(Program::new(vec![Op::Compute(1_000_000), Op::Exit]).unwrap());
        let ok = s
            .kernel_of_mut(1)
            .register_program(Program::exit_immediately());
        create_on(&mut s, 0, hog, 1);
        s.run(20);
        create_on(&mut s, 0, hog, 2); // OOM: kills slave 0
        s.run(20);
        assert!(s.slave_crashed_at(0));
        assert!(!s.slave_crashed_at(1));
        // Slave 1 still services commands; slave 0 is silent from now on.
        create_on(&mut s, 1, ok, 5);
        s.issue_to(0, SvcRequest::PeekVar { var: VarId(0) })
            .unwrap();
        s.run(200);
        let resps = s.take_responses();
        assert!(
            resps.iter().any(|r| r.slave == 1 && r.result.is_ok()),
            "healthy slave keeps answering: {resps:?}"
        );
        // Slave 0's unanswered command is overdue; slave 1 is clean.
        s.run(600);
        assert!(!s.overdue_for(0, Cycles::new(500)).is_empty());
        assert!(s.overdue_for(1, Cycles::new(500)).is_empty());
    }

    #[test]
    fn semaphore_links_forward_tokens_across_kernels() {
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        let outbox = s.kernel_of_mut(0).create_semaphore(0);
        let inbox = s.kernel_of_mut(1).create_semaphore(0);
        s.link_semaphores(0, outbox, 1, inbox).unwrap();
        // Producer on slave 0 posts twice; consumer on slave 1 waits twice.
        let producer = s.kernel_of_mut(0).register_program(
            Program::new(vec![Op::SemPost(outbox), Op::SemPost(outbox), Op::Exit]).unwrap(),
        );
        let consumer = s.kernel_of_mut(1).register_program(
            Program::new(vec![
                Op::SemWait(inbox),
                Op::SemWait(inbox),
                Op::WriteVar {
                    var: VarId(1),
                    value: 99,
                },
                Op::Exit,
            ])
            .unwrap(),
        );
        create_on(&mut s, 1, consumer, 5);
        s.run(50); // consumer blocks first
        create_on(&mut s, 0, producer, 5);
        assert!(s.run_until_quiescent(10_000));
        assert_eq!(s.kernel_of(1).var(VarId(1)), Some(99));
    }

    #[test]
    fn same_slave_links_and_bad_indices_are_rejected() {
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        let a = s.kernel_of_mut(0).create_semaphore(0);
        assert_eq!(s.link_semaphores(0, a, 0, a), Err(CouplingError::SameSlave));
        assert_eq!(
            s.link_semaphores(0, a, 5, a),
            Err(CouplingError::NoSuchSlave { slave: 5 })
        );
        assert!(s.sem_links().is_empty());
    }

    #[test]
    fn shared_vars_mirror_across_kernels_with_last_writer_wins() {
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        s.share_var(VarId(2), 0x3_0000).unwrap();
        assert_eq!(s.shared_vars().len(), 1);
        let writer = |value: i64| {
            Program::new(vec![
                Op::WriteVar {
                    var: VarId(2),
                    value,
                },
                Op::Exit,
            ])
            .unwrap()
        };
        let p0 = s.kernel_of_mut(0).register_program(writer(41));
        create_on(&mut s, 0, p0, 5);
        assert!(s.run_until_quiescent(5_000));
        // Slave 0's write propagated to slave 1's kernel.
        assert_eq!(s.kernel_of(1).var(VarId(2)), Some(41));
        let p1 = s.kernel_of_mut(1).register_program(writer(42));
        create_on(&mut s, 1, p1, 5);
        assert!(s.run_until_quiescent(5_000));
        assert_eq!(s.kernel_of(0).var(VarId(2)), Some(42));
    }

    #[test]
    fn same_cycle_shared_var_race_adopts_the_highest_indexed_writer() {
        // Pin the mirroring epoch's tie-break: divergent values are
        // adopted in ascending slave order, so when two slaves update the
        // same variable within one cycle the *highest-indexed* writer
        // wins — not the chronologically last store. The docs (ROADMAP,
        // README, this module) all describe exactly this rule.
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(3));
        s.share_var(VarId(2), 0x3_0000).unwrap();
        s.kernel_of_mut(0).set_var(VarId(2), 10);
        s.kernel_of_mut(1).set_var(VarId(2), 20);
        s.step();
        for slave in 0..3 {
            assert_eq!(
                s.kernel_of(slave).var(VarId(2)),
                Some(20),
                "slave {slave} must hold the highest-indexed divergent value"
            );
        }
        // And the mirror keeps working from the agreed value afterwards.
        s.kernel_of_mut(2).set_var(VarId(2), 30);
        s.step();
        assert_eq!(s.kernel_of(0).var(VarId(2)), Some(30));
    }

    // --- schedule exploration ---------------------------------------

    #[test]
    fn lock_step_scheduler_is_bit_identical_to_plain_step() {
        use crate::sched::LockStepScheduler;
        let build = || {
            let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
            for slave in 0..2 {
                let prog = s.kernel_of_mut(slave).register_program(
                    Program::new(vec![
                        Op::Compute(30),
                        Op::WriteVar {
                            var: VarId(0),
                            value: 7,
                        },
                        Op::Exit,
                    ])
                    .unwrap(),
                );
                create_on(&mut s, slave, prog, 5);
            }
            s
        };
        let mut plain = build();
        let mut scheduled = build();
        let mut sched = LockStepScheduler;
        for _ in 0..500 {
            plain.step();
            scheduled.step_with(&mut sched);
            assert_eq!(plain.now(), scheduled.now());
            assert_eq!(plain.snapshots(), scheduled.snapshots());
        }
        assert_eq!(
            plain
                .trace()
                .tail(64)
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
            scheduled
                .trace()
                .tail(64)
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn random_priority_schedule_skews_relative_progress() {
        use crate::sched::{RandomPriorityConfig, RandomPriorityScheduler};
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        for slave in 0..2 {
            let prog = s.kernel_of_mut(slave).register_program(
                Program::new(vec![Op::AddReg { reg: 1, delta: 1 }, Op::Jump(0)]).unwrap(),
            );
            create_on(&mut s, slave, prog, 5);
        }
        s.run(50); // both tasks created and running
        let mut sched = RandomPriorityScheduler::new(
            2,
            1,
            RandomPriorityConfig {
                change_points: 0,
                horizon: 1,
                fairness_window: 64,
                ..RandomPriorityConfig::default()
            },
        );
        for _ in 0..1_000 {
            s.step_with(&mut sched);
        }
        let ops: Vec<u64> = (0..2)
            .map(|i| s.snapshot_of(i).tasks[0].ops_retired)
            .collect();
        // One leader runs ~64x faster than the backstopped follower; in
        // lock-step both would retire the same count.
        let (hi, lo) = (ops.iter().max().unwrap(), ops.iter().min().unwrap());
        assert!(
            *hi > *lo * 4,
            "randomized priorities must skew progress: {ops:?}"
        );
        assert!(*lo > 0, "fairness backstop keeps the follower moving");
    }

    #[test]
    fn scheduled_slaves_still_service_doorbells() {
        use crate::sched::{RandomPriorityConfig, RandomPriorityScheduler};
        // Even a slave the scheduler never advances answers commands:
        // interrupt servicing is not schedulable.
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        let mut sched = RandomPriorityScheduler::new(
            2,
            123,
            RandomPriorityConfig {
                change_points: 0,
                horizon: 1,
                fairness_window: 0,
                ..RandomPriorityConfig::default()
            },
        );
        s.issue_to(
            1,
            SvcRequest::PokeVar {
                var: VarId(2),
                value: 55,
            },
        )
        .unwrap();
        for _ in 0..100 {
            s.step_with(&mut sched);
        }
        let resps = s.take_responses();
        assert_eq!(resps.len(), 1, "doorbell must be serviced: {resps:?}");
        assert_eq!(s.kernel_of(1).var(VarId(2)), Some(55));
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn zero_slave_system_panics() {
        let _ = MultiCoreSystem::new(SystemConfig {
            slaves: 0,
            ..SystemConfig::default()
        });
    }

    // --- memory-model exploration ------------------------------------

    #[test]
    fn store_buffer_delays_cross_core_visibility_but_stays_bounded() {
        use crate::mem::{MemoryModelSpec, StoreBufferConfig};
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        s.share_var(VarId(2), 0x3_0000).unwrap();
        let spec = MemoryModelSpec::StoreBuffer(StoreBufferConfig {
            max_delay: 40,
            capacity: 8,
        });
        let mut model = spec.model(7).expect("store buffer builds a model");
        // Warm the model's view of the platform, then store out-of-band.
        s.step_with_memory(model.as_mut());
        s.kernel_of_mut(0).set_var(VarId(2), 77);
        let mut delay = 0u64;
        while s.kernel_of(1).var(VarId(2)) != Some(77) {
            s.step_with_memory(model.as_mut());
            delay += 1;
            assert!(delay <= 41, "delivery must be bounded by max_delay");
        }
        assert!(
            delay > 1,
            "seed 7 with max_delay 40 must actually delay the store"
        );
        assert_eq!(
            s.kernel_of(0).var(VarId(2)),
            Some(77),
            "writer keeps forward visibility the whole time"
        );
    }

    #[test]
    fn fence_op_drains_the_store_buffer_through_the_platform() {
        use crate::mem::{MemoryModelSpec, StoreBufferConfig};
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        s.share_var(VarId(2), 0x3_0000).unwrap();
        let fenced = s.kernel_of_mut(0).register_program(
            Program::new(vec![
                Op::WriteVar {
                    var: VarId(2),
                    value: 5,
                },
                Op::Fence,
                Op::Compute(200),
                Op::Exit,
            ])
            .unwrap(),
        );
        let spec = MemoryModelSpec::StoreBuffer(StoreBufferConfig {
            max_delay: 10_000,
            capacity: 8,
        });
        let mut model = spec.model(3).expect("store buffer builds a model");
        create_on(&mut s, 0, fenced, 5);
        // Without the fence a 10k-cycle delay would hide the store for
        // the whole run; the fence forces it out within a few cycles of
        // retiring.
        for _ in 0..200 {
            s.step_with_memory(model.as_mut());
        }
        assert_eq!(s.kernel_of(1).var(VarId(2)), Some(5));
    }

    #[test]
    fn zero_delay_store_buffer_matches_the_seq_cst_epoch() {
        use crate::mem::{MemoryModelSpec, StoreBufferConfig};
        let build = || {
            let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(2));
            s.share_var(VarId(2), 0x3_0000).unwrap();
            let writer = s.kernel_of_mut(0).register_program(
                Program::new(vec![
                    Op::Compute(25),
                    Op::WriteVar {
                        var: VarId(2),
                        value: 9,
                    },
                    Op::Exit,
                ])
                .unwrap(),
            );
            let reader = s.kernel_of_mut(1).register_program(
                Program::new(vec![
                    Op::BranchIfVarEq {
                        var: VarId(2),
                        value: 9,
                        target: 3,
                    },
                    Op::Compute(1),
                    Op::Jump(0),
                    Op::Exit,
                ])
                .unwrap(),
            );
            create_on(&mut s, 0, writer, 5);
            create_on(&mut s, 1, reader, 5);
            s
        };
        let mut epoch = build();
        let mut modeled = build();
        let spec = MemoryModelSpec::StoreBuffer(StoreBufferConfig {
            max_delay: 0,
            capacity: 8,
        });
        let mut model = spec.model(99).expect("store buffer builds a model");
        for _ in 0..500 {
            epoch.step();
            modeled.step_with_memory(model.as_mut());
            assert_eq!(epoch.snapshots(), modeled.snapshots());
        }
    }

    // --- event-driven fast-forward ------------------------------------

    /// A system whose only task computes briefly, then sleeps `sleep`
    /// cycles, then exits — the canonical fast-forwardable workload.
    fn sleeper_sys(sleep: u32) -> DualCoreSystem {
        let mut s = sys();
        let prog = s.kernel_mut().register_program(
            Program::new(vec![Op::Compute(5), Op::SleepFor(sleep), Op::Exit]).unwrap(),
        );
        s.issue(SvcRequest::Create {
            program: prog,
            priority: Priority::new(5),
            stack_bytes: None,
        })
        .unwrap();
        s
    }

    /// Steps `s` until its horizon certifies an idle window, returning
    /// the window length (cycles strictly before the horizon). Drains
    /// the response inbox each cycle as a trial's committer would — an
    /// undrained inbox is a (conservative) disqualifier.
    fn step_to_idle(s: &mut DualCoreSystem, max: u64) -> u64 {
        for _ in 0..max {
            s.step();
            s.drain_responses();
            if let IdleHorizon::Until(at) = s.quiescent_horizon() {
                let skip = at.saturating_sub(s.now().get() + 1);
                if skip > 0 {
                    return skip;
                }
            }
        }
        panic!("no skippable idle window found within {max} cycles");
    }

    #[test]
    fn lock_step_fast_forward_matches_stepping() {
        let mut stepped = sleeper_sys(5_000);
        let mut forwarded = sleeper_sys(5_000);
        let skip = step_to_idle(&mut stepped, 200);
        assert_eq!(step_to_idle(&mut forwarded, 200), skip);
        forwarded.fast_forward_idle(skip);
        for _ in 0..skip {
            stepped.step();
        }
        assert_eq!(stepped.now(), forwarded.now());
        assert_eq!(stepped.snapshots(), forwarded.snapshots());
        // Both runs continue identically to quiescence: the sleeper
        // wakes at the horizon and exits.
        assert!(stepped.run_until_quiescent(10_000));
        assert!(forwarded.run_until_quiescent(10_000));
        assert_eq!(stepped.now(), forwarded.now());
        assert_eq!(stepped.snapshots(), forwarded.snapshots());
        assert_eq!(stepped.take_responses(), forwarded.take_responses());
    }

    #[test]
    fn scheduled_fast_forward_matches_stepping() {
        use crate::sched::{RandomPriorityConfig, RandomPriorityScheduler};
        let cfg = RandomPriorityConfig::default();
        let mut stepped = sleeper_sys(4_000);
        let mut forwarded = sleeper_sys(4_000);
        let mut sched_a = RandomPriorityScheduler::new(1, 77, cfg);
        let mut sched_b = RandomPriorityScheduler::new(1, 77, cfg);
        let idle_at = loop {
            stepped.step_with(&mut sched_a);
            forwarded.step_with(&mut sched_b);
            stepped.drain_responses();
            forwarded.drain_responses();
            if let IdleHorizon::Until(at) = forwarded.quiescent_horizon() {
                if at > forwarded.now().get() + 1 {
                    break at;
                }
            }
            assert!(forwarded.now().get() < 1_000, "no idle window found");
        };
        let skip = idle_at - forwarded.now().get() - 1;
        forwarded.fast_forward_idle_with(skip, &mut sched_b);
        for _ in 0..skip {
            stepped.step_with(&mut sched_a);
        }
        assert_eq!(stepped.now(), forwarded.now());
        assert_eq!(stepped.snapshots(), forwarded.snapshots());
        // Post-window behaviour (wake, exit, response delivery) must
        // stay identical — the scheduler states agree too.
        for _ in 0..6_000 {
            stepped.step_with(&mut sched_a);
            forwarded.step_with(&mut sched_b);
        }
        assert_eq!(stepped.snapshots(), forwarded.snapshots());
        assert_eq!(stepped.take_responses(), forwarded.take_responses());
    }

    #[test]
    fn quiescent_horizon_disqualifies_active_work() {
        let mut s = sys();
        assert_eq!(
            s.quiescent_horizon(),
            IdleHorizon::Unbounded,
            "an empty platform has nothing scheduled"
        );
        let prog = s
            .kernel_mut()
            .register_program(Program::new(vec![Op::Compute(50), Op::Exit]).unwrap());
        s.issue(SvcRequest::Create {
            program: prog,
            priority: Priority::new(5),
            stack_bytes: None,
        })
        .unwrap();
        // In-flight command traffic disqualifies...
        assert_eq!(s.quiescent_horizon(), IdleHorizon::Unknown);
        s.run(5);
        // ...and so does the now-running task.
        assert_eq!(s.quiescent_horizon(), IdleHorizon::Unknown);
        assert!(s.run_until_quiescent(1_000));
        s.take_responses();
        assert_eq!(
            s.quiescent_horizon(),
            IdleHorizon::Unbounded,
            "terminated tasks schedule nothing"
        );
    }

    #[test]
    fn quiescent_horizon_sees_master_thread_sleepers() {
        let mut s = sys();
        s.add_thread("M1", vec![MasterOp::SleepFor(300), MasterOp::Done]);
        s.step(); // thread executes SleepFor at cycle 1
                  // The thread stays `current` for one more cycle; the horizon
                  // must refuse to skip until the rotation retires it.
        while s.quiescent_horizon() == IdleHorizon::Unknown {
            s.step();
            assert!(s.now().get() < 10, "thread must leave the master slot");
        }
        let IdleHorizon::Until(at) = s.quiescent_horizon() else {
            panic!("a sleeping thread must bound the horizon");
        };
        assert_eq!(at, 301, "SleepFor(300) at cycle 1 wakes at 301");
        let skip = at - s.now().get() - 1;
        s.fast_forward_idle(skip);
        assert!(s.run_until_quiescent(50), "thread wakes and finishes");
    }

    #[test]
    fn snapshot_cache_tracks_epochs_and_scalars() {
        let mut s = sleeper_sys(2_000);
        let mut cache = SnapshotCache::new();
        s.run(40); // task created, computed, now asleep
        s.snapshots_into_cached(&mut cache);
        assert_eq!(cache.snapshots(), s.snapshots().as_slice());
        assert_eq!(cache.dirty(), [true], "first observation is dirty");
        s.run(10); // pure idle ticks: epoch unchanged
        s.snapshots_into_cached(&mut cache);
        assert_eq!(cache.dirty(), [false], "idle ticks leave the kernel clean");
        assert_eq!(
            cache.snapshots(),
            s.snapshots().as_slice(),
            "clean refresh still matches a full snapshot exactly"
        );
        s.run(3_000); // sleeper wakes, exits: epoch moved
        s.snapshots_into_cached(&mut cache);
        assert_eq!(cache.dirty(), [true], "state transitions re-dirty");
        assert_eq!(cache.snapshots(), s.snapshots().as_slice());
        cache.reset();
        s.snapshots_into_cached(&mut cache);
        assert_eq!(cache.dirty(), [true], "reset invalidates everything");
    }

    use crate::preempt::{ClockSkewConfig, InterruptConfig, PreemptionSpec, QuantumConfig};

    fn spin_prog(s: &mut DualCoreSystem) -> ProgramId {
        s.kernel_mut()
            .register_program(Program::new(vec![Op::Jump(0)]).unwrap())
    }

    fn isr_prog(s: &mut MultiCoreSystem, slave: usize) -> ProgramId {
        let p = s.kernel_of_mut(slave).register_program(
            Program::new(vec![
                Op::WriteVar {
                    var: VarId(9),
                    value: 1,
                },
                Op::Exit,
            ])
            .unwrap(),
        );
        s.kernel_of_mut(slave).set_isr_program(p);
        p
    }

    #[test]
    fn inert_preemption_spec_changes_nothing() {
        let run_workload = |install: bool| {
            let mut s = sys();
            if install {
                s.install_preemption(&PreemptionSpec::default(), 0xDEAD_BEEF);
            }
            let p = exit_prog(&mut s);
            s.issue(SvcRequest::Create {
                program: p,
                priority: Priority::new(5),
                stack_bytes: None,
            })
            .unwrap();
            s.run(200);
            s
        };
        let plain = run_workload(false);
        let inert = run_workload(true);
        assert_eq!(plain.snapshot(), inert.snapshot());
        assert_eq!(inert.preemption_spec(), None, "inert spec installs nothing");
        assert_eq!(inert.total_preemptions(), 0);
        assert_eq!(inert.total_isr_runs(), 0);
        assert_eq!(inert.pending_injections(), 0);
    }

    #[test]
    fn quantum_rotates_cores_between_spinning_tasks() {
        let ops_of = |s: &MultiCoreSystem| -> Vec<u64> {
            let mut ops: Vec<u64> = s.snapshot().tasks.iter().map(|t| t.ops_retired).collect();
            ops.sort_unstable();
            ops
        };
        let run_spinners = |spec: Option<PreemptionSpec>| {
            let mut s = sys();
            if let Some(spec) = spec {
                s.install_preemption(&spec, 3);
            }
            let p = spin_prog(&mut s);
            for pri in [5, 3] {
                s.issue(SvcRequest::Create {
                    program: p,
                    priority: Priority::new(pri),
                    stack_bytes: None,
                })
                .unwrap();
            }
            s.run(400);
            s
        };
        let unpreempted = run_spinners(None);
        assert_eq!(
            ops_of(&unpreempted)[0],
            0,
            "without a quantum the high-priority spinner starves the other"
        );
        let sliced = run_spinners(Some(PreemptionSpec {
            quantum: Some(QuantumConfig { cycles: 8 }),
            ..PreemptionSpec::default()
        }));
        assert!(
            ops_of(&sliced)[0] > 0,
            "quantum slices hand the core to the low-priority spinner"
        );
        assert!(sliced.total_preemptions() > 0);
    }

    #[test]
    fn planned_interrupts_run_the_isr_deterministically() {
        let spec = PreemptionSpec {
            interrupts: Some(InterruptConfig {
                count: 3,
                horizon: 200,
                injection_mask: u64::MAX,
            }),
            ..PreemptionSpec::default()
        };
        let run_once = || {
            let mut s = sys();
            isr_prog(&mut s, 0);
            s.install_preemption(&spec, 42);
            s.run(300);
            s
        };
        let a = run_once();
        assert_eq!(a.total_isr_runs(), 3, "every planned injection ran the ISR");
        assert_eq!(a.pending_injections(), 0);
        assert_eq!(a.kernel().var(VarId(9)), Some(1), "the ISR body executed");
        assert!(
            a.trace().iter().any(|e| e.kind == "irq-inject"),
            "injections are traced"
        );
        let b = run_once();
        assert_eq!(a.snapshot(), b.snapshot(), "the irq axis replays exactly");
    }

    #[test]
    fn fast_forward_replays_planned_injections_exactly() {
        let spec = PreemptionSpec {
            interrupts: Some(InterruptConfig {
                count: 2,
                horizon: 400,
                injection_mask: u64::MAX,
            }),
            ..PreemptionSpec::default()
        };
        let mk = || {
            let mut s = sys();
            isr_prog(&mut s, 0);
            s.install_preemption(&spec, 77);
            s
        };
        let mut stepped = mk();
        for _ in 0..500 {
            stepped.step();
        }
        let mut ffwd = mk();
        let mut rounds = 0;
        while ffwd.now().get() < 500 {
            let left = 500 - ffwd.now().get();
            match ffwd.quiescent_horizon() {
                IdleHorizon::Until(at) if at > ffwd.now().get() + 1 => {
                    ffwd.fast_forward_idle((at - ffwd.now().get() - 1).min(left));
                }
                IdleHorizon::Unbounded => ffwd.fast_forward_idle(left),
                _ => ffwd.step(),
            }
            rounds += 1;
            assert!(rounds < 1_000, "fast-forward must make progress");
        }
        assert!(
            rounds < 500,
            "the horizon must certify some skippable idle windows"
        );
        assert_eq!(stepped.total_isr_runs(), 2);
        assert_eq!(
            ffwd.snapshot(),
            stepped.snapshot(),
            "fast-forward is bit-identical across injection cycles"
        );
        assert_eq!(ffwd.total_isr_runs(), stepped.total_isr_runs());
    }

    #[test]
    fn clock_skew_diverges_per_slave_local_time() {
        let spec = PreemptionSpec {
            clock_skew: Some(ClockSkewConfig { max_rate: 512 }),
            ..PreemptionSpec::default()
        };
        let mut s = MultiCoreSystem::new(SystemConfig::with_slaves(3));
        s.install_preemption(&spec, 11);
        s.run(1_000);
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..3 {
            let local = s.local_time_of(i, s.now());
            assert_eq!(
                s.snapshot_of(i).now,
                local,
                "each kernel's clock is its local time"
            );
            assert!(local.get() >= 1_000, "skewed clocks only run fast");
            distinct.insert(local.get());
        }
        assert!(
            distinct.len() > 1,
            "a 50% max skew over 1000 cycles must separate 3 slaves: {distinct:?}"
        );
    }
}
