//! The dual-core system: both cores, the bridge, and the master runtime
//! wired together and advanced in lock-step virtual time.

use std::collections::VecDeque;

use ptest_bridge::{BridgeError, BridgeLayout, CmdId, CmdResponse, MasterPort, SlaveEndpoint};
use ptest_pcore::{Kernel, KernelConfig, KernelSnapshot, SvcRequest};
use ptest_soc::{CoreId, Cycles, MailboxBank, SharedSram, TraceBuffer, VirtualClock};

use crate::thread::{MasterOp, MasterThread, ThreadId, ThreadState};

/// Configuration of a [`DualCoreSystem`].
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Slave-kernel configuration.
    pub kernel: KernelConfig,
    /// Master scheduler quantum in cycles (time-sharing round robin).
    pub quantum: u32,
    /// Commands the slave endpoint services per doorbell interrupt.
    pub slave_budget: usize,
    /// Capacity of the system trace ring.
    pub trace_capacity: usize,
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig {
            kernel: KernelConfig::default(),
            quantum: 5,
            slave_budget: 16,
            trace_capacity: TraceBuffer::DEFAULT_CAPACITY,
        }
    }
}

/// The simulated OMAP5912-like platform: ARM master runtime + DSP slave
/// kernel + pCore-Bridge middleware + shared hardware, advanced one cycle
/// at a time by [`DualCoreSystem::step`].
///
/// Both a scripted mode (add [`MasterThread`]s, as in Figure 1) and a
/// direct mode ([`DualCoreSystem::issue`], used by pTest's committer) are
/// supported and can be mixed.
///
/// ```
/// use ptest_master::{DualCoreSystem, SystemConfig};
/// use ptest_pcore::{Priority, Program, SvcRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = DualCoreSystem::new(SystemConfig::default());
/// let prog = sys.kernel_mut().register_program(Program::exit_immediately());
/// sys.issue(SvcRequest::Create { program: prog, priority: Priority::new(5), stack_bytes: None })?;
/// sys.run(100);
/// assert_eq!(sys.take_responses().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DualCoreSystem {
    clock: VirtualClock,
    sram: SharedSram,
    mailboxes: MailboxBank,
    kernel: Kernel,
    master_port: MasterPort,
    slave_endpoint: SlaveEndpoint,
    threads: Vec<MasterThread>,
    run_queue: VecDeque<ThreadId>,
    current_thread: Option<ThreadId>,
    quantum_left: u32,
    inbox: Vec<CmdResponse>,
    trace: TraceBuffer,
    cfg: SystemConfig,
}

impl DualCoreSystem {
    /// Builds and wires a fresh system.
    ///
    /// # Panics
    ///
    /// Panics if the standard bridge layout does not fit the SRAM window
    /// (cannot happen with the default 250 KB window).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> DualCoreSystem {
        let layout = BridgeLayout::standard();
        let mut sram = SharedSram::omap5912();
        layout
            .init(&mut sram)
            .expect("standard bridge layout fits the OMAP SRAM window");
        DualCoreSystem {
            clock: VirtualClock::new(),
            sram,
            mailboxes: MailboxBank::omap5912(),
            kernel: Kernel::new(cfg.kernel.clone()),
            master_port: MasterPort::new(layout),
            slave_endpoint: SlaveEndpoint::new(layout),
            threads: Vec::new(),
            run_queue: VecDeque::new(),
            current_thread: None,
            quantum_left: 0,
            inbox: Vec::new(),
            trace: TraceBuffer::new(cfg.trace_capacity),
            cfg,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// Read access to the slave kernel (for assertions and the bug
    /// detector's shared-memory debug window).
    #[must_use]
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the slave kernel for *scenario setup only*
    /// (registering programs, creating semaphores/mutexes before the test
    /// starts). Runtime interaction must go through [`DualCoreSystem::issue`].
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// The system trace (master-side events; the kernel keeps its own).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Adds a master thread; it enters the run queue immediately.
    pub fn add_thread(&mut self, name: impl Into<String>, ops: Vec<MasterOp>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u16);
        self.threads.push(MasterThread::new(id, name, ops));
        self.run_queue.push_back(id);
        id
    }

    /// Read access to a thread.
    #[must_use]
    pub fn thread(&self, id: ThreadId) -> Option<&MasterThread> {
        self.threads.get(usize::from(id.0))
    }

    /// Whether every scripted thread has finished.
    #[must_use]
    pub fn threads_done(&self) -> bool {
        self.threads.iter().all(MasterThread::is_done)
    }

    /// Issues a remote command directly (the committer's path), stamped
    /// at the current virtual time.
    ///
    /// # Errors
    ///
    /// [`BridgeError::CommandRingFull`] if 32 commands are in flight.
    pub fn issue(&mut self, req: SvcRequest) -> Result<CmdId, BridgeError> {
        let now = self.clock.now();
        let id = self
            .master_port
            .issue(&mut self.sram, &mut self.mailboxes, req, now)?;
        self.trace
            .record(now, CoreId::Arm, "cmd", format!("{id} {req:?}"));
        Ok(id)
    }

    /// Drains responses that no scripted thread claimed (fire-and-forget
    /// and committer-issued commands).
    pub fn take_responses(&mut self) -> Vec<CmdResponse> {
        std::mem::take(&mut self.inbox)
    }

    /// Commands outstanding longer than `timeout`.
    #[must_use]
    pub fn overdue(&self, timeout: Cycles) -> Vec<CmdId> {
        self.master_port.overdue(self.clock.now(), timeout)
    }

    /// Number of commands awaiting responses.
    #[must_use]
    pub fn pending_commands(&self) -> usize {
        self.master_port.pending_count()
    }

    /// A kernel snapshot (the detector's debug window into the slave).
    #[must_use]
    pub fn snapshot(&self) -> KernelSnapshot {
        self.kernel.snapshot()
    }

    /// Advances the whole platform by one cycle: slave interrupt
    /// servicing, one kernel cycle, response delivery, one master-thread
    /// step under the round-robin quantum.
    pub fn step(&mut self) {
        self.clock.tick();
        let now = self.clock.now();

        // --- DSP side: doorbell interrupts preempt task execution.
        self.slave_endpoint.service(
            &mut self.sram,
            &mut self.mailboxes,
            &mut self.kernel,
            now,
            self.cfg.slave_budget,
        );
        let _ = self.kernel.tick(now);

        // --- ARM side: deliver responses, then run one thread op.
        let responses = self
            .master_port
            .poll_responses(&mut self.sram, &mut self.mailboxes, now);
        for resp in responses {
            let claimed = self.threads.iter_mut().any(|t| t.deliver(&resp));
            if !claimed {
                self.inbox.push(resp);
            }
        }
        self.step_master(now);
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until the platform is quiescent — all scripted threads done,
    /// no commands in flight, and the kernel idle — or `max_cycles`
    /// elapse. Returns `true` if quiescence was reached.
    ///
    /// Systems containing spinning or deadlocked tasks never quiesce;
    /// callers rely on the cycle bound (that non-quiescence is exactly
    /// what the bug detector looks for).
    pub fn run_until_quiescent(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            self.step();
            if self.threads_done() && self.pending_commands() == 0 && self.kernel_idle() {
                return true;
            }
        }
        false
    }

    fn kernel_idle(&self) -> bool {
        let snap = self.kernel.snapshot();
        snap.panic.is_none()
            && snap
                .tasks
                .iter()
                .all(|t| matches!(t.state, ptest_pcore::TaskState::Terminated(_)))
    }

    /// Whether the slave kernel has crashed.
    #[must_use]
    pub fn slave_crashed(&self) -> bool {
        self.kernel.panic().is_some()
    }

    fn step_master(&mut self, now: Cycles) {
        // Pick (or keep) the current thread under the quantum policy.
        let now_raw = now.get();
        let runnable_current = self
            .current_thread
            .and_then(|id| self.threads.get(usize::from(id.0)))
            .is_some_and(|t| t.is_runnable(now_raw));
        if !runnable_current || self.quantum_left == 0 {
            if let Some(id) = self.current_thread.take() {
                let t = &self.threads[usize::from(id.0)];
                if !t.is_done() {
                    self.run_queue.push_back(id);
                }
            }
            // Rotate to the next runnable thread.
            let mut rotations = self.run_queue.len();
            while rotations > 0 {
                rotations -= 1;
                let Some(id) = self.run_queue.pop_front() else {
                    break;
                };
                let t = &self.threads[usize::from(id.0)];
                if t.is_done() {
                    continue;
                }
                if t.is_runnable(now_raw) {
                    self.current_thread = Some(id);
                    self.quantum_left = self.cfg.quantum;
                    break;
                }
                self.run_queue.push_back(id);
            }
        }
        let Some(id) = self.current_thread else {
            return;
        };
        self.quantum_left = self.quantum_left.saturating_sub(1);
        self.run_thread_op(id, now);
    }

    fn run_thread_op(&mut self, id: ThreadId, now: Cycles) {
        let idx = usize::from(id.0);
        // Multi-cycle compute in progress?
        {
            let t = &mut self.threads[idx];
            if t.state == ThreadState::Ready && t.compute_remaining > 0 {
                t.compute_remaining -= 1;
                return;
            }
            if let ThreadState::Sleeping { until } = t.state {
                if until <= now.get() {
                    t.state = ThreadState::Ready;
                } else {
                    return;
                }
            }
            if t.state != ThreadState::Ready {
                return;
            }
        }
        let op = self.threads[idx].current_op();
        match op {
            None | Some(MasterOp::Done) => {
                let t = &mut self.threads[idx];
                t.state = ThreadState::Done;
                if self.current_thread == Some(id) {
                    self.current_thread = None;
                }
                self.trace
                    .record(now, CoreId::Arm, "thread", format!("{} done", t.name));
            }
            Some(MasterOp::Issue(req)) => {
                match self
                    .master_port
                    .issue(&mut self.sram, &mut self.mailboxes, req, now)
                {
                    Ok(cmd) => {
                        let t = &mut self.threads[idx];
                        t.pc += 1;
                        t.ops_retired += 1;
                        self.trace.record(
                            now,
                            CoreId::Arm,
                            "cmd",
                            format!("{} issues {cmd} {req:?}", t.name),
                        );
                    }
                    Err(_) => { /* ring full: retry next cycle */ }
                }
            }
            Some(MasterOp::IssueAndWait(req)) => {
                match self
                    .master_port
                    .issue(&mut self.sram, &mut self.mailboxes, req, now)
                {
                    Ok(cmd) => {
                        let t = &mut self.threads[idx];
                        t.pc += 1;
                        t.ops_retired += 1;
                        t.state = ThreadState::Waiting(cmd);
                        self.trace.record(
                            now,
                            CoreId::Arm,
                            "cmd",
                            format!("{} issues {cmd} {req:?} (waits)", t.name),
                        );
                    }
                    Err(_) => { /* ring full: retry next cycle */ }
                }
            }
            Some(MasterOp::Compute(n)) => {
                let t = &mut self.threads[idx];
                t.compute_remaining = u64::from(n.saturating_sub(1));
                t.pc += 1;
                t.ops_retired += 1;
            }
            Some(MasterOp::SleepFor(n)) => {
                let t = &mut self.threads[idx];
                t.state = ThreadState::Sleeping {
                    until: now.get() + u64::from(n),
                };
                t.pc += 1;
                t.ops_retired += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{Priority, Program, ProgramId, SvcReply, TaskState, VarId};

    fn sys() -> DualCoreSystem {
        DualCoreSystem::new(SystemConfig::default())
    }

    fn exit_prog(s: &mut DualCoreSystem) -> ProgramId {
        s.kernel_mut().register_program(Program::exit_immediately())
    }

    #[test]
    fn committer_path_roundtrip() {
        let mut s = sys();
        let p = exit_prog(&mut s);
        s.issue(SvcRequest::Create {
            program: p,
            priority: Priority::new(5),
            stack_bytes: None,
        })
        .unwrap();
        s.run(50);
        let resps = s.take_responses();
        assert_eq!(resps.len(), 1);
        assert!(matches!(resps[0].result, Ok(SvcReply::Created(_))));
        assert!(s.run_until_quiescent(1_000));
    }

    #[test]
    fn scripted_thread_creates_and_finishes() {
        let mut s = sys();
        let p = exit_prog(&mut s);
        let m1 = s.add_thread(
            "M1",
            vec![
                MasterOp::IssueAndWait(SvcRequest::Create {
                    program: p,
                    priority: Priority::new(5),
                    stack_bytes: None,
                }),
                MasterOp::Done,
            ],
        );
        assert!(s.run_until_quiescent(5_000));
        let t = s.thread(m1).unwrap();
        assert!(t.is_done());
        assert!(t.bound_task.is_some());
        assert!(matches!(
            t.last_response.as_ref().unwrap().result,
            Ok(SvcReply::Created(_))
        ));
    }

    #[test]
    fn two_threads_time_share() {
        let mut s = sys();
        let m1 = s.add_thread("M1", vec![MasterOp::Compute(50), MasterOp::Done]);
        let m2 = s.add_thread("M2", vec![MasterOp::Compute(50), MasterOp::Done]);
        s.run(40);
        // With a quantum of 5, both threads must have made progress.
        let t1 = s.thread(m1).unwrap();
        let t2 = s.thread(m2).unwrap();
        assert!(t1.ops_retired > 0 || t1.compute_remaining < 50);
        assert!(t2.ops_retired > 0 || t2.compute_remaining < 50);
        assert!(s.run_until_quiescent(200));
    }

    #[test]
    fn poke_peek_via_commands() {
        let mut s = sys();
        s.issue(SvcRequest::PokeVar {
            var: VarId(2),
            value: 123,
        })
        .unwrap();
        s.run(20);
        s.issue(SvcRequest::PeekVar { var: VarId(2) }).unwrap();
        s.run(20);
        let resps = s.take_responses();
        assert_eq!(resps.len(), 2);
        assert_eq!(resps[1].result, Ok(SvcReply::Value(123)));
    }

    #[test]
    fn slave_task_actually_runs() {
        let mut s = sys();
        let prog = s.kernel_mut().register_program(
            Program::new(vec![
                ptest_pcore::Op::WriteVar {
                    var: VarId(0),
                    value: 7,
                },
                ptest_pcore::Op::Exit,
            ])
            .unwrap(),
        );
        s.issue(SvcRequest::Create {
            program: prog,
            priority: Priority::new(3),
            stack_bytes: None,
        })
        .unwrap();
        assert!(s.run_until_quiescent(1_000));
        assert_eq!(s.kernel().var(VarId(0)), Some(7));
    }

    #[test]
    fn crash_detected_via_timeouts() {
        let mut cfg = SystemConfig::default();
        cfg.kernel.heap_bytes = 1024; // two creates exceed this
        let mut s = DualCoreSystem::new(cfg);
        let p = exit_prog(&mut s);
        // Park a long-running task so its memory stays live.
        let hog = s.kernel_mut().register_program(
            Program::new(vec![
                ptest_pcore::Op::Compute(1_000_000),
                ptest_pcore::Op::Exit,
            ])
            .unwrap(),
        );
        s.issue(SvcRequest::Create {
            program: hog,
            priority: Priority::new(1),
            stack_bytes: None,
        })
        .unwrap();
        s.run(20);
        s.issue(SvcRequest::Create {
            program: p,
            priority: Priority::new(2),
            stack_bytes: None,
        })
        .unwrap();
        s.run(20);
        assert!(s.slave_crashed(), "second create must OOM-panic the kernel");
        // Commands issued after the crash never complete.
        s.issue(SvcRequest::PeekVar { var: VarId(0) }).unwrap();
        s.run(600);
        assert_eq!(s.overdue(Cycles::new(500)).len(), 1);
    }

    #[test]
    fn fire_and_forget_issue_lands_in_inbox() {
        let mut s = sys();
        let p = exit_prog(&mut s);
        s.add_thread(
            "M1",
            vec![
                MasterOp::Issue(SvcRequest::Create {
                    program: p,
                    priority: Priority::new(5),
                    stack_bytes: None,
                }),
                MasterOp::Done,
            ],
        );
        assert!(s.run_until_quiescent(5_000));
        // The thread never waited, so the response went to the inbox.
        let resps = s.take_responses();
        assert_eq!(resps.len(), 1);
        assert!(matches!(resps[0].result, Ok(SvcReply::Created(_))));
    }

    #[test]
    fn sleeping_thread_resumes_on_schedule() {
        let mut s = sys();
        let m = s.add_thread(
            "M1",
            vec![
                MasterOp::SleepFor(200),
                MasterOp::Compute(5),
                MasterOp::Done,
            ],
        );
        s.run(100);
        assert!(!s.thread(m).unwrap().is_done(), "still sleeping");
        s.run(400);
        assert!(s.thread(m).unwrap().is_done());
    }

    #[test]
    fn quiescence_not_reached_by_spinning_task() {
        let mut s = sys();
        let spin = s
            .kernel_mut()
            .register_program(Program::new(vec![ptest_pcore::Op::Jump(0)]).unwrap());
        s.issue(SvcRequest::Create {
            program: spin,
            priority: Priority::new(3),
            stack_bytes: None,
        })
        .unwrap();
        assert!(!s.run_until_quiescent(2_000));
        let snap = s.snapshot();
        assert_eq!(snap.live_tasks(), 1);
        assert!(matches!(snap.tasks[0].state, TaskState::Ready));
    }
}
