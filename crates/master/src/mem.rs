//! Memory-model exploration: pluggable cross-core propagation of the
//! SRAM-mirrored shared variables.
//!
//! PR 3's `sync_shared_vars` epoch is sequentially consistent: a store
//! retired at cycle `t` is visible to every kernel from cycle `t + 1`,
//! and divergent same-cycle writers are collapsed to one agreed value.
//! Real embedded multicores are weaker — store buffers delay global
//! visibility — so a whole class of the paper's target bugs (flag/data
//! publication races, cross-slave observation disagreements) is
//! unreachable by construction under that epoch.
//!
//! This module factors the propagation step behind a [`MemoryModel`]
//! trait, mirroring the scheduler refactor in [`crate::sched`]:
//!
//! * [`MemoryModelSpec::SeqCst`] is the default and compiles to **no
//!   model at all** — [`MemoryModelSpec::model`] returns `None` and the
//!   platform keeps running the existing epoch fast path, byte-identical
//!   to every pre-refactor trace.
//! * [`MemoryModelSpec::StoreBuffer`] gives each slave a FIFO store
//!   buffer with *seeded* drain points: a store becomes visible to its
//!   own kernel immediately (forward visibility — the writer reads its
//!   own buffered value), while delivery to each other observer is
//!   delayed by a deterministic per-`(store, observer)` number of cycles
//!   drawn from the memory seed. Because delivery times differ per
//!   observer, the model is deliberately *not* multi-copy atomic: two
//!   slaves can observe two independent stores in opposite orders, which
//!   is exactly what the IRIW fault scenario needs.
//!
//! Delivery is bounded: every pending store is force-delivered at most
//! [`StoreBufferConfig::max_delay`] cycles after it retired, and each
//! buffer holds at most [`StoreBufferConfig::capacity`] entries (the
//! oldest entry is force-drained beyond that). Both bounds are far below
//! the detector's no-progress windows, so livelock/starvation rules stay
//! sound under reordering.
//!
//! [`ptest_pcore::Op::Fence`] ops are surfaced to the active model
//! through [`SharedVarBus::take_fences`]. A fence is *cumulative*, in
//! the POWER/ARM sense: it flushes the fencing slave's own buffer **and**
//! force-delivers, to everyone, every in-flight foreign store the
//! fencing slave has already observed. Writer-side-only flushes cannot
//! restore agreement on store order across observers (IRIW survives
//! them); cumulativity is what lets reader-side fences fix it.
//!
//! Like schedules, memory models are replay handles: a trial is fully
//! determined by its `(pattern seed, schedule seed, memory seed)`
//! triple.

use std::collections::VecDeque;
use std::fmt;

use ptest_soc::Cycles;

use crate::sched::splitmix64;

/// The platform's view of shared-variable state, as presented to a
/// memory model once per cycle.
///
/// Implemented by the [`MultiCoreSystem`](crate::MultiCoreSystem) over
/// its slave kernels and shared SRAM, and by a toy in-memory bus in this
/// module's tests. Variables are addressed by their *shared index* — the
/// order they were registered with `share_var` — not by [`VarId`];
/// translation to per-kernel variable ids happens behind the bus.
///
/// [`VarId`]: ptest_pcore::VarId
pub trait SharedVarBus {
    /// Number of slave cores on the bus.
    fn slaves(&self) -> usize;
    /// Number of registered shared variables.
    fn shared_count(&self) -> usize;
    /// The value slave `slave` currently observes for shared variable
    /// `idx`.
    fn local(&self, slave: usize, idx: usize) -> i64;
    /// The last globally-agreed (published) value of shared variable
    /// `idx` — the baseline a fresh model measures stores against, so a
    /// store retired in the very cycle the model first runs is still
    /// seen as a store.
    fn agreed(&self, idx: usize) -> i64;
    /// Makes `value` visible to slave `slave` for shared variable `idx`.
    fn set_local(&mut self, slave: usize, idx: usize, value: i64);
    /// Publishes the globally-retired value of shared variable `idx` to
    /// the backing SRAM mirror (observational; kernels read their local
    /// copies).
    fn publish(&mut self, idx: usize, value: i64);
    /// Drains the count of `Op::Fence` ops slave `slave` retired since
    /// the last call.
    fn take_fences(&mut self, slave: usize) -> u64;
}

/// A memory model's contribution to the event-driven trial loop's
/// fast-forward horizon (see [`MemoryModel::idle_horizon`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleHorizon {
    /// The model cannot certify its idle behaviour; the platform must
    /// step (and [`MemoryModel::sync`]) cycle by cycle.
    Unknown,
    /// Nothing is in flight: with no new stores or fences, every future
    /// sync is a no-op, so idle cycles may be skipped without bound.
    Unbounded,
    /// With no new stores or fences, every sync strictly before this
    /// cycle is a no-op; the sync *at* this cycle may deliver.
    Until(u64),
}

/// A pluggable cross-core propagation policy for shared variables.
///
/// Called once per platform cycle, after the slave kernels have ticked,
/// at the exact point the sequentially-consistent epoch used to run.
pub trait MemoryModel: fmt::Debug + Send {
    /// Propagates stores for the cycle that just executed.
    fn sync(&mut self, now: Cycles, bus: &mut dyn SharedVarBus);

    /// The earliest future cycle at which this model can change
    /// observable state *on its own clock* — assuming no kernel retires
    /// a store or fence in the meantime (the system-level quiescence
    /// check guarantees that during a skipped window). Skipping the
    /// per-cycle [`MemoryModel::sync`] calls strictly before the
    /// returned horizon must be bit-identical to making them.
    ///
    /// The default is [`IdleHorizon::Unknown`], which disqualifies
    /// fast-forwarding entirely — always sound.
    fn idle_horizon(&self) -> IdleHorizon {
        IdleHorizon::Unknown
    }
}

/// Configuration of the [`StoreBufferModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreBufferConfig {
    /// Upper bound, in cycles, on how long any store may stay invisible
    /// to any observer. Per-`(store, observer)` delays are drawn
    /// uniformly from `0..=max_delay` off the memory seed. Must stay
    /// well below the detector's no-progress windows.
    pub max_delay: u64,
    /// Maximum pending stores per slave; the oldest entry is
    /// force-delivered beyond this depth (a real store buffer stalls —
    /// we drain, which keeps the platform lock-step-steppable).
    pub capacity: usize,
}

impl Default for StoreBufferConfig {
    fn default() -> StoreBufferConfig {
        StoreBufferConfig {
            max_delay: 24,
            capacity: 8,
        }
    }
}

/// Declarative memory-model selection, carried by `AdaptiveTestConfig`
/// the same way [`ScheduleSpec`](crate::ScheduleSpec) carries the
/// schedule. The spec plus a memory seed fully determines propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryModelSpec {
    /// Sequentially consistent SRAM mirroring — the original epoch.
    /// Compiles to the fast path: no model object is built at all.
    #[default]
    SeqCst,
    /// Per-slave FIFO store buffers with seeded drain points.
    StoreBuffer(StoreBufferConfig),
}

impl MemoryModelSpec {
    /// The store-buffer model at its default configuration.
    #[must_use]
    pub fn store_buffer() -> MemoryModelSpec {
        MemoryModelSpec::StoreBuffer(StoreBufferConfig::default())
    }

    /// Builds the model this spec describes, seeded with `memory_seed`.
    ///
    /// Returns `None` for [`MemoryModelSpec::SeqCst`]: the platform then
    /// takes its built-in epoch path with zero per-cycle overhead, which
    /// is what pins the golden fixtures byte-identical.
    #[must_use]
    pub fn model(&self, memory_seed: u64) -> Option<Box<dyn MemoryModel>> {
        match self {
            MemoryModelSpec::SeqCst => None,
            MemoryModelSpec::StoreBuffer(cfg) => {
                Some(Box::new(StoreBufferModel::new(*cfg, memory_seed)))
            }
        }
    }

    /// Stable human-readable label, used as the aggregation key in
    /// campaign detection tables.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            MemoryModelSpec::SeqCst => "seq-cst".to_owned(),
            MemoryModelSpec::StoreBuffer(cfg) => {
                format!("store-buffer(d={})", cfg.max_delay)
            }
        }
    }
}

/// One buffered store: the written value plus its per-observer delivery
/// schedule.
#[derive(Debug)]
struct PendingStore {
    /// Shared-variable index the store targets.
    idx: usize,
    /// The stored value.
    value: i64,
    /// Absolute cycle at which each observer receives the store.
    deliver_at: Vec<u64>,
    /// Which observers have already received it (the writer itself from
    /// the start — forward visibility).
    delivered: Vec<bool>,
}

impl PendingStore {
    fn fully_delivered(&self) -> bool {
        self.delivered.iter().all(|d| *d)
    }
}

/// The [`MemoryModelSpec::StoreBuffer`] implementation: one FIFO buffer
/// of pending stores per slave, drained at seeded per-observer
/// delivery times.
///
/// Stores are detected by value: the model keeps a `last_seen` shadow of
/// every kernel's shared variables and treats any divergence as a store
/// retired this cycle (kernels retire at most one op per cycle, so no
/// intermediate value can be missed). Dimensions are discovered lazily
/// from the bus on first sync, so `share_var` registrations during
/// scenario setup need no replumbing.
#[derive(Debug)]
pub struct StoreBufferModel {
    cfg: StoreBufferConfig,
    seed: u64,
    /// Monotone store counter, mixed into every delay draw.
    seq: u64,
    /// What each slave's kernel currently holds, from the model's view.
    last_seen: Vec<Vec<i64>>,
    /// Pending stores, one FIFO per writing slave.
    buffers: Vec<VecDeque<PendingStore>>,
}

impl StoreBufferModel {
    /// Builds an empty model; state is sized from the bus on first
    /// [`MemoryModel::sync`].
    #[must_use]
    pub fn new(cfg: StoreBufferConfig, memory_seed: u64) -> StoreBufferModel {
        StoreBufferModel {
            cfg,
            seed: memory_seed,
            seq: 0,
            last_seen: Vec::new(),
            buffers: Vec::new(),
        }
    }

    /// Deterministic delivery delay for store number `seq` by `writer`
    /// as seen by `observer`, in `0..=max_delay`.
    fn delay(&self, writer: usize, seq: u64, observer: usize) -> u64 {
        const LANE_STRIDE: u64 = 0x9E6C_63D0_76CC_4391;
        let lane = ((writer as u64) << 32) ^ (observer as u64) ^ seq.wrapping_mul(LANE_STRIDE);
        splitmix64(self.seed ^ splitmix64(lane)) % (self.cfg.max_delay + 1)
    }

    fn ensure_dims(&mut self, slaves: usize, shared: usize, bus: &dyn SharedVarBus) {
        if self.last_seen.len() != slaves {
            self.last_seen = (0..slaves)
                .map(|_| (0..shared).map(|i| bus.agreed(i)).collect())
                .collect();
            self.buffers = (0..slaves).map(|_| VecDeque::new()).collect();
            return;
        }
        for seen in &mut self.last_seen {
            while seen.len() < shared {
                let idx = seen.len();
                seen.push(bus.agreed(idx));
            }
        }
    }

    /// Turns every kernel-side divergence from `last_seen` into a
    /// pending store retired this cycle.
    fn absorb_stores(&mut self, now: u64, slaves: usize, shared: usize, bus: &dyn SharedVarBus) {
        for s in 0..slaves {
            for idx in 0..shared {
                let local = bus.local(s, idx);
                if local == self.last_seen[s][idx] {
                    continue;
                }
                self.last_seen[s][idx] = local;
                let mut deliver_at = vec![now; slaves];
                let mut delivered = vec![false; slaves];
                delivered[s] = true; // forward visibility: writer sees its own store
                for (j, at) in deliver_at.iter_mut().enumerate() {
                    if j != s {
                        *at = now + self.delay(s, self.seq, j);
                    }
                }
                self.seq += 1;
                self.buffers[s].push_back(PendingStore {
                    idx,
                    value: local,
                    deliver_at,
                    delivered,
                });
            }
        }
    }

    /// Delivers entry `k` of writer `w`'s buffer to observer `j`, unless
    /// already delivered. The observer keeps its own newer value when it
    /// has a pending store to the same variable (its buffer shadows the
    /// incoming write), but the delivery still counts as observed.
    fn deliver_one(&mut self, w: usize, k: usize, j: usize, bus: &mut dyn SharedVarBus) {
        if self.buffers[w][k].delivered[j] {
            return;
        }
        self.buffers[w][k].delivered[j] = true;
        if j == w {
            return;
        }
        let (idx, value) = {
            let e = &self.buffers[w][k];
            (e.idx, e.value)
        };
        if self.buffers[j].iter().any(|own| own.idx == idx) {
            return;
        }
        bus.set_local(j, idx, value);
        self.last_seen[j][idx] = value;
    }

    /// Force-delivers the first `count` entries of writer `w`'s buffer
    /// to every observer (FIFO order, so per-lane ordering holds).
    fn force_deliver_prefix(&mut self, w: usize, count: usize, bus: &mut dyn SharedVarBus) {
        let slaves = self.buffers.len();
        for k in 0..count {
            for j in 0..slaves {
                self.deliver_one(w, k, j, bus);
            }
        }
    }

    /// Applies retired fences: flush the fencing slave's own buffer and
    /// — cumulativity — force-deliver, per foreign writer, the prefix up
    /// to the last entry the fencing slave has already observed.
    fn apply_fences(&mut self, slaves: usize, bus: &mut dyn SharedVarBus) {
        for s in 0..slaves {
            if bus.take_fences(s) == 0 {
                continue;
            }
            let own = self.buffers[s].len();
            self.force_deliver_prefix(s, own, bus);
            for w in 0..slaves {
                if w == s {
                    continue;
                }
                if let Some(cut) = self.buffers[w].iter().rposition(|e| e.delivered[s]) {
                    self.force_deliver_prefix(w, cut + 1, bus);
                }
            }
        }
    }

    /// Delivers every store whose time has come, walking each
    /// `(writer, observer)` lane front-to-back and stopping at the first
    /// undue entry so per-lane FIFO order is preserved.
    fn deliver_due(&mut self, now: u64, slaves: usize, bus: &mut dyn SharedVarBus) {
        for w in 0..slaves {
            for j in 0..slaves {
                if j == w {
                    continue;
                }
                let mut k = 0;
                while k < self.buffers[w].len() {
                    if self.buffers[w][k].delivered[j] {
                        k += 1;
                        continue;
                    }
                    if self.buffers[w][k].deliver_at[j] > now {
                        break;
                    }
                    self.deliver_one(w, k, j, bus);
                    k += 1;
                }
            }
        }
    }

    /// Pops the front entry of writer `w` if fully delivered, publishing
    /// its value to the SRAM mirror.
    fn retire_front(&mut self, w: usize, bus: &mut dyn SharedVarBus) {
        if let Some(front) = self.buffers[w].front() {
            if front.fully_delivered() {
                let e = self.buffers[w].pop_front().expect("front exists");
                bus.publish(e.idx, e.value);
            }
        }
    }

    /// Bounds buffer depth by force-draining the oldest entries.
    fn enforce_capacity(&mut self, slaves: usize, bus: &mut dyn SharedVarBus) {
        for w in 0..slaves {
            while self.buffers[w].len() > self.cfg.capacity {
                for j in 0..slaves {
                    self.deliver_one(w, 0, j, bus);
                }
                self.retire_front(w, bus);
            }
        }
    }

    fn retire_delivered(&mut self, slaves: usize, bus: &mut dyn SharedVarBus) {
        for w in 0..slaves {
            while self.buffers[w]
                .front()
                .is_some_and(PendingStore::fully_delivered)
            {
                self.retire_front(w, bus);
            }
        }
    }
}

impl MemoryModel for StoreBufferModel {
    fn sync(&mut self, now: Cycles, bus: &mut dyn SharedVarBus) {
        let slaves = bus.slaves();
        let shared = bus.shared_count();
        if slaves == 0 || shared == 0 {
            return;
        }
        self.ensure_dims(slaves, shared, bus);
        let now = now.get();
        self.absorb_stores(now, slaves, shared, bus);
        self.apply_fences(slaves, bus);
        self.deliver_due(now, slaves, bus);
        self.enforce_capacity(slaves, bus);
        self.retire_delivered(slaves, bus);
    }

    fn idle_horizon(&self) -> IdleHorizon {
        // Per `(writer, observer)` lane, `deliver_due` walks front to
        // back and stops at the first undue undelivered entry, so the
        // lane's next possible delivery is exactly its first
        // undelivered entry's `deliver_at`. The model's horizon is the
        // minimum over lanes; with every buffer empty, idle syncs are
        // no-ops forever.
        let mut next: Option<u64> = None;
        for (w, buffer) in self.buffers.iter().enumerate() {
            let observers = self.buffers.len();
            for j in 0..observers {
                if j == w {
                    continue;
                }
                if let Some(e) = buffer.iter().find(|e| !e.delivered[j]) {
                    let at = e.deliver_at[j];
                    next = Some(next.map_or(at, |n| n.min(at)));
                }
            }
        }
        match next {
            None => IdleHorizon::Unbounded,
            Some(at) => IdleHorizon::Until(at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory bus: per-slave variable copies plus an SRAM mirror.
    struct ToyBus {
        vars: Vec<Vec<i64>>,
        sram: Vec<i64>,
        fences: Vec<u64>,
    }

    impl ToyBus {
        fn new(slaves: usize, shared: usize) -> ToyBus {
            ToyBus {
                vars: vec![vec![0; shared]; slaves],
                sram: vec![0; shared],
                fences: vec![0; slaves],
            }
        }
    }

    impl SharedVarBus for ToyBus {
        fn slaves(&self) -> usize {
            self.vars.len()
        }
        fn shared_count(&self) -> usize {
            self.sram.len()
        }
        fn local(&self, slave: usize, idx: usize) -> i64 {
            self.vars[slave][idx]
        }
        fn agreed(&self, idx: usize) -> i64 {
            self.sram[idx]
        }
        fn set_local(&mut self, slave: usize, idx: usize, value: i64) {
            self.vars[slave][idx] = value;
        }
        fn publish(&mut self, idx: usize, value: i64) {
            self.sram[idx] = value;
        }
        fn take_fences(&mut self, slave: usize) -> u64 {
            std::mem::take(&mut self.fences[slave])
        }
    }

    fn model(max_delay: u64, seed: u64) -> StoreBufferModel {
        StoreBufferModel::new(
            StoreBufferConfig {
                max_delay,
                capacity: 8,
            },
            seed,
        )
    }

    #[test]
    fn seq_cst_spec_is_the_no_model_fast_path() {
        assert!(MemoryModelSpec::default().model(7).is_none());
        assert!(MemoryModelSpec::SeqCst.model(0).is_none());
        assert!(MemoryModelSpec::store_buffer().model(7).is_some());
    }

    #[test]
    fn labels_are_stable_aggregation_keys() {
        assert_eq!(MemoryModelSpec::SeqCst.label(), "seq-cst");
        assert_eq!(
            MemoryModelSpec::store_buffer().label(),
            "store-buffer(d=24)"
        );
        let tight = MemoryModelSpec::StoreBuffer(StoreBufferConfig {
            max_delay: 3,
            capacity: 8,
        });
        assert_eq!(tight.label(), "store-buffer(d=3)");
    }

    #[test]
    fn zero_delay_delivers_within_the_same_cycle() {
        let mut bus = ToyBus::new(2, 1);
        let mut m = model(0, 42);
        m.sync(Cycles::new(1), &mut bus); // sizes state
        bus.vars[0][0] = 5;
        m.sync(Cycles::new(2), &mut bus);
        assert_eq!(bus.vars[1][0], 5, "delay 0 matches the epoch's visibility");
        assert_eq!(bus.sram[0], 5, "fully delivered stores publish to SRAM");
    }

    #[test]
    fn stores_stay_forward_visible_and_cross_visibility_is_bounded() {
        let mut bus = ToyBus::new(2, 1);
        let mut m = model(24, 9);
        m.sync(Cycles::new(1), &mut bus);
        bus.vars[0][0] = 7;
        let mut seen_at = None;
        for t in 2..2 + 64 {
            m.sync(Cycles::new(t), &mut bus);
            assert_eq!(bus.vars[0][0], 7, "writer always sees its own store");
            if bus.vars[1][0] == 7 && seen_at.is_none() {
                seen_at = Some(t);
            }
        }
        let seen_at = seen_at.expect("store must be delivered");
        assert!(
            seen_at <= 2 + 24,
            "delivery bounded by max_delay: {seen_at}"
        );
    }

    #[test]
    fn delivery_times_are_a_pure_function_of_the_memory_seed() {
        let run = |seed: u64| {
            let mut bus = ToyBus::new(3, 2);
            let mut m = model(50, seed);
            m.sync(Cycles::new(1), &mut bus);
            bus.vars[0][0] = 11;
            bus.vars[2][1] = 13;
            let mut trace = Vec::new();
            for t in 2..80 {
                m.sync(Cycles::new(t), &mut bus);
                trace.push((bus.vars.clone(), bus.sram.clone()));
            }
            trace
        };
        assert_eq!(run(5), run(5), "same seed, same delivery schedule");
        assert_ne!(run(5), run(6), "different seeds reorder deliveries");
    }

    #[test]
    fn fence_flushes_the_writers_own_buffer() {
        let mut bus = ToyBus::new(2, 1);
        let mut m = model(1_000, 3);
        m.sync(Cycles::new(1), &mut bus);
        bus.vars[0][0] = 9;
        m.sync(Cycles::new(2), &mut bus);
        assert_eq!(bus.vars[1][0], 0, "still buffered under a huge delay");
        bus.fences[0] = 1;
        m.sync(Cycles::new(3), &mut bus);
        assert_eq!(bus.vars[1][0], 9, "fence drains the store buffer");
        assert_eq!(bus.sram[0], 9);
    }

    #[test]
    fn fences_are_cumulative_over_observed_foreign_stores() {
        // Find a seed where writer 0's store reaches slave 1 well before
        // slave 2; then a fence *by slave 1* must force the store out to
        // slave 2 (it has observed it, so cumulativity propagates it).
        for seed in 0..64u64 {
            let mut bus = ToyBus::new(3, 1);
            let mut m = model(1_000, seed);
            m.sync(Cycles::new(1), &mut bus);
            bus.vars[0][0] = 4;
            let mut t = 2;
            let observed_by_1 = loop {
                m.sync(Cycles::new(t), &mut bus);
                if bus.vars[1][0] == 4 || bus.vars[2][0] == 4 {
                    break bus.vars[1][0] == 4 && bus.vars[2][0] != 4;
                }
                t += 1;
            };
            if !observed_by_1 {
                continue; // slave 2 got it first (or simultaneously); try another seed
            }
            bus.fences[1] = 1;
            m.sync(Cycles::new(t + 1), &mut bus);
            assert_eq!(
                bus.vars[2][0], 4,
                "observer's fence must force-deliver the observed store (seed {seed})"
            );
            return;
        }
        panic!("no seed exercised the asymmetric delivery window");
    }

    #[test]
    fn capacity_bound_force_drains_the_oldest_stores() {
        let mut bus = ToyBus::new(2, 1);
        let mut m = StoreBufferModel::new(
            StoreBufferConfig {
                max_delay: 10_000,
                capacity: 2,
            },
            17,
        );
        m.sync(Cycles::new(1), &mut bus);
        for (i, t) in (2..7).enumerate() {
            bus.vars[0][0] = (i + 1) as i64;
            m.sync(Cycles::new(t), &mut bus);
        }
        // Five stores through a depth-2 buffer: at least the first three
        // were force-drained, so the observer is at most 2 stores stale.
        assert!(
            bus.vars[1][0] >= 3,
            "observer too stale: {}",
            bus.vars[1][0]
        );
    }

    #[test]
    fn observers_own_pending_store_shadows_incoming_deliveries() {
        let mut bus = ToyBus::new(2, 1);
        let mut m = model(0, 1);
        m.sync(Cycles::new(1), &mut bus);
        // Both slaves store to the same variable in the same cycle; with
        // delay 0 each delivery is shadowed by the receiver's own pending
        // store, so each keeps its own (forward-visible) value.
        bus.vars[0][0] = 10;
        bus.vars[1][0] = 20;
        m.sync(Cycles::new(2), &mut bus);
        assert_eq!(bus.vars[0][0], 10);
        assert_eq!(bus.vars[1][0], 20);
    }

    #[test]
    fn idle_horizon_tracks_the_earliest_pending_delivery() {
        let mut bus = ToyBus::new(2, 1);
        let mut m = model(1_000, 3);
        assert_eq!(m.idle_horizon(), IdleHorizon::Unbounded, "fresh model");
        m.sync(Cycles::new(1), &mut bus);
        assert_eq!(m.idle_horizon(), IdleHorizon::Unbounded, "no stores yet");
        bus.vars[0][0] = 9;
        m.sync(Cycles::new(2), &mut bus);
        let IdleHorizon::Until(at) = m.idle_horizon() else {
            panic!("a buffered store must bound the horizon");
        };
        assert!(at > 2, "delivery is strictly in the future: {at}");
        // Skipping syncs up to the horizon, then syncing there, must
        // deliver exactly as the cycle-by-cycle run would.
        m.sync(Cycles::new(at), &mut bus);
        assert_eq!(bus.vars[1][0], 9, "store delivered at its horizon");
        assert_eq!(m.idle_horizon(), IdleHorizon::Unbounded, "drained again");
    }

    #[test]
    fn spec_is_copy_eq_default() {
        let spec = MemoryModelSpec::store_buffer();
        let copy = spec;
        assert_eq!(spec, copy);
        assert_eq!(MemoryModelSpec::default(), MemoryModelSpec::SeqCst);
    }
}
