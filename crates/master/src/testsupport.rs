//! Shared test-only scheduler replay shims, used by the `sched` unit
//! tests and the preemption/system suites alike: one-cycle planning and
//! the per-cycle idle replay that closed-form `skip_idle_cycles`
//! overrides are checked against.

use crate::sched::{IdleAdvance, Scheduler};
use ptest_soc::Cycles;

/// Plans one cycle (at cycle 1) over `runnable` and returns the advance
/// mask.
pub(crate) fn plan_once(s: &mut dyn Scheduler, runnable: &[bool]) -> Vec<bool> {
    let mut advance = vec![true; runnable.len()];
    s.plan(Cycles::new(1), runnable, &mut advance);
    advance
}

/// Replays `count` cycles one by one with an all-false runnable set —
/// the `skip_idle_cycles` default implementation, hoisted so tests can
/// compare a closed-form override against it on the same type.
pub(crate) fn replay_idle(
    s: &mut dyn Scheduler,
    start: u64,
    count: u64,
    slaves: usize,
) -> Vec<IdleAdvance> {
    let runnable = vec![false; slaves];
    let mut advance = vec![true; slaves];
    let mut idle = vec![IdleAdvance::default(); slaves];
    for c in 0..count {
        advance.fill(true);
        s.plan(Cycles::new(start + c), &runnable, &mut advance);
        for (i, &a) in advance.iter().enumerate() {
            if a {
                idle[i].ticks += 1;
                idle[i].last = Some(Cycles::new(start + c));
            }
        }
    }
    idle
}

/// Skips `count` idle cycles in one `skip_idle_cycles` call and returns
/// the per-slave idle advances.
pub(crate) fn skip_idle(
    s: &mut dyn Scheduler,
    start: u64,
    count: u64,
    slaves: usize,
) -> Vec<IdleAdvance> {
    let runnable = vec![false; slaves];
    let mut advance = vec![true; slaves];
    let mut idle = vec![IdleAdvance::default(); slaves];
    s.skip_idle_cycles(
        Cycles::new(start),
        count,
        &runnable,
        &mut advance,
        &mut idle,
    );
    idle
}
