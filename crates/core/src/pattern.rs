//! Test patterns and merged (interleaved) test patterns.

use ptest_automata::{Alphabet, Sym};

/// A test pattern: a sequence of slave-system services "arranged in
/// rational order" (paper §II-B), destined for **one** slave task.
///
/// Produced by the [`PatternGenerator`](crate::PatternGenerator) walking
/// the PFA (Algorithm 2); `n` of these are merged by the
/// [`PatternMerger`](crate::PatternMerger) into one interleaved pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestPattern {
    symbols: Vec<Sym>,
}

impl TestPattern {
    /// Wraps a symbol sequence.
    #[must_use]
    pub fn new(symbols: Vec<Sym>) -> TestPattern {
        TestPattern { symbols }
    }

    /// The service symbols in order.
    #[must_use]
    pub fn symbols(&self) -> &[Sym] {
        &self.symbols
    }

    /// Number of services in the pattern (the paper's `s`, unless the
    /// walk absorbed early).
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the pattern is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Renders the pattern via the alphabet, e.g. `"TC TCH TD"`.
    #[must_use]
    pub fn render(&self, alphabet: &Alphabet) -> String {
        alphabet.render(&self.symbols)
    }
}

impl From<Vec<Sym>> for TestPattern {
    fn from(symbols: Vec<Sym>) -> TestPattern {
        TestPattern::new(symbols)
    }
}

/// One step of a merged pattern: which source pattern (slave task) the
/// service targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedStep {
    /// Index of the source test pattern (and hence of the controlled
    /// slave task / master thread, per the 1:1 correspondence).
    pub pattern: usize,
    /// The service to issue.
    pub sym: Sym,
}

/// The output of the pattern merger: one interleaved sequence of
/// (pattern, service) steps preserving each source pattern's order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MergedPattern {
    steps: Vec<MergedStep>,
}

impl MergedPattern {
    /// Wraps a step sequence.
    #[must_use]
    pub fn new(steps: Vec<MergedStep>) -> MergedPattern {
        MergedPattern { steps }
    }

    /// The steps in issue order.
    #[must_use]
    pub fn steps(&self) -> &[MergedStep] {
        &self.steps
    }

    /// Number of steps.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether there are no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Projects the steps of one source pattern back out, in order.
    #[must_use]
    pub fn project(&self, pattern: usize) -> Vec<Sym> {
        self.steps
            .iter()
            .filter(|s| s.pattern == pattern)
            .map(|s| s.sym)
            .collect()
    }

    /// Renders as `"0:TC 1:TC 0:TD …"`.
    #[must_use]
    pub fn render(&self, alphabet: &Alphabet) -> String {
        self.steps
            .iter()
            .map(|s| format!("{}:{}", s.pattern, alphabet.name(s.sym).unwrap_or("?")))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Checks the *order-preservation invariant*: projecting pattern `i`
    /// out of the merge must yield exactly `patterns[i]` — the merger
    /// interleaves, never reorders (it "acts as a scheduler").
    #[must_use]
    pub fn preserves_order_of(&self, patterns: &[TestPattern]) -> bool {
        (0..patterns.len()).all(|i| self.project(i) == patterns[i].symbols())
            && self.steps.iter().all(|s| s.pattern < patterns.len())
            && self.len() == patterns.iter().map(TestPattern::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u16) -> Sym {
        Sym(i)
    }

    #[test]
    fn pattern_basics() {
        let p = TestPattern::new(vec![sym(0), sym(1)]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        let q: TestPattern = vec![sym(0)].into();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn render_uses_alphabet() {
        let mut a = Alphabet::new();
        let tc = a.intern("TC");
        let td = a.intern("TD");
        let p = TestPattern::new(vec![tc, td]);
        assert_eq!(p.render(&a), "TC TD");
        let m = MergedPattern::new(vec![
            MergedStep {
                pattern: 0,
                sym: tc,
            },
            MergedStep {
                pattern: 1,
                sym: tc,
            },
            MergedStep {
                pattern: 0,
                sym: td,
            },
        ]);
        assert_eq!(m.render(&a), "0:TC 1:TC 0:TD");
    }

    #[test]
    fn projection_recovers_sources() {
        let m = MergedPattern::new(vec![
            MergedStep {
                pattern: 0,
                sym: sym(5),
            },
            MergedStep {
                pattern: 1,
                sym: sym(9),
            },
            MergedStep {
                pattern: 0,
                sym: sym(6),
            },
        ]);
        assert_eq!(m.project(0), vec![sym(5), sym(6)]);
        assert_eq!(m.project(1), vec![sym(9)]);
        assert_eq!(m.project(7), Vec::<Sym>::new());
    }

    #[test]
    fn order_preservation_check() {
        let p0 = TestPattern::new(vec![sym(1), sym(2)]);
        let p1 = TestPattern::new(vec![sym(3)]);
        let good = MergedPattern::new(vec![
            MergedStep {
                pattern: 1,
                sym: sym(3),
            },
            MergedStep {
                pattern: 0,
                sym: sym(1),
            },
            MergedStep {
                pattern: 0,
                sym: sym(2),
            },
        ]);
        assert!(good.preserves_order_of(&[p0.clone(), p1.clone()]));
        let reordered = MergedPattern::new(vec![
            MergedStep {
                pattern: 0,
                sym: sym(2),
            },
            MergedStep {
                pattern: 0,
                sym: sym(1),
            },
            MergedStep {
                pattern: 1,
                sym: sym(3),
            },
        ]);
        assert!(!reordered.preserves_order_of(&[p0.clone(), p1.clone()]));
        let missing = MergedPattern::new(vec![MergedStep {
            pattern: 0,
            sym: sym(1),
        }]);
        assert!(!missing.preserves_order_of(&[p0, p1]));
    }
}
