//! The pattern generator (paper Algorithm 2).
//!
//! `PatternGenerator(RE, PD, s)`: interpret the regular expression,
//! convert it to an NFA, attach the probability distribution to obtain
//! the PFA, then walk the PFA emitting `s` services per pattern.

use ptest_automata::{Dfa, GenerateOptions, Pfa, PfaError, ProbabilityAssignment, Regex, Sym};
use rand::Rng;

use crate::pattern::TestPattern;

/// The pattern generator: a compiled PFA plus its legality oracle.
///
/// ```
/// use ptest_core::PatternGenerator;
/// use ptest_automata::GenerateOptions;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let generator = PatternGenerator::pcore_paper()?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pattern = generator.generate(&mut rng, GenerateOptions::sized(8));
/// assert!(generator.is_legal_prefix(pattern.symbols()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PatternGenerator {
    regex: Regex,
    dfa: Dfa,
    pfa: Pfa,
}

impl PatternGenerator {
    /// Compiles a regular expression and probability distribution into a
    /// generator (`ConvertToNFA` + `ConstructPFA` of Algorithm 2).
    ///
    /// # Errors
    ///
    /// [`PfaError`] if the distribution is invalid for the skeleton.
    pub fn new(regex: Regex, pd: &ProbabilityAssignment) -> Result<PatternGenerator, PfaError> {
        let dfa = Dfa::from_regex(&regex).minimize();
        let pfa = Pfa::from_dfa(&dfa, regex.alphabet().clone(), pd)?;
        Ok(PatternGenerator { regex, dfa, pfa })
    }

    /// The generator for pCore used throughout the paper's evaluation:
    /// Eq. 2 with the Figure 5 probability distribution.
    ///
    /// The paper's Figure 5 edge labels map onto the minimal lifecycle
    /// skeleton as: from the running state TCH 0.6, TS 0.2, TD 0.1,
    /// TY 0.1; the TC and TR edges are forced (probability 1).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the error type is kept for uniformity.
    pub fn pcore_paper() -> Result<PatternGenerator, PfaError> {
        PatternGenerator::new(
            Regex::pcore_task_lifecycle(),
            &ProbabilityAssignment::weights([
                ("TC", 1.0),
                ("TCH", 0.6),
                ("TS", 0.2),
                ("TD", 0.1),
                ("TY", 0.1),
                ("TR", 1.0),
            ]),
        )
    }

    /// The regular expression this generator was built from.
    #[must_use]
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The deterministic skeleton (the legality oracle).
    #[must_use]
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The probabilistic automaton.
    #[must_use]
    pub fn pfa(&self) -> &Pfa {
        &self.pfa
    }

    /// Generates one test pattern (one invocation of Algorithm 2).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, opts: GenerateOptions) -> TestPattern {
        TestPattern::new(self.pfa.generate(rng, opts))
    }

    /// Generates one pattern into a caller-owned symbol buffer (clearing
    /// it first) — the zero-allocation walk for loops that do not keep
    /// the pattern, such as the campaign learning pass and the perf
    /// harness.
    pub fn generate_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        opts: GenerateOptions,
        buf: &mut Vec<Sym>,
    ) {
        self.pfa.generate_into(rng, opts, buf);
    }

    /// Generates the set `T` of `n` patterns (Algorithm 1, lines 1–3).
    pub fn generate_batch<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        n: usize,
        opts: GenerateOptions,
    ) -> Vec<TestPattern> {
        (0..n).map(|_| self.generate(rng, opts)).collect()
    }

    /// Whether `seq` is a prefix of the service language — every pattern
    /// this generator emits satisfies this.
    #[must_use]
    pub fn is_legal_prefix(&self, seq: &[Sym]) -> bool {
        self.dfa.is_valid_prefix(seq)
    }

    /// Probability of this exact pattern being generated (product of
    /// branch probabilities along its unique path).
    #[must_use]
    pub fn pattern_probability(&self, pattern: &TestPattern) -> f64 {
        self.pfa.sequence_probability(pattern.symbols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pcore_paper_generator_builds() {
        let g = PatternGenerator::pcore_paper().unwrap();
        assert_eq!(g.regex().alphabet().len(), 6);
        assert_eq!(g.dfa().len(), 4);
        g.pfa().validate().unwrap();
    }

    #[test]
    fn batch_has_n_patterns_all_legal() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = g.generate_batch(&mut rng, 16, GenerateOptions::sized(32));
        assert_eq!(batch.len(), 16);
        for p in &batch {
            assert!(
                g.is_legal_prefix(p.symbols()),
                "{}",
                p.render(g.regex().alphabet())
            );
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn every_pattern_starts_with_tc() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let tc = g.regex().alphabet().sym("TC").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let p = g.generate(&mut rng, GenerateOptions::sized(8));
            assert_eq!(p.symbols().first(), Some(&tc), "life cycle starts with TC");
        }
    }

    #[test]
    fn cyclic_patterns_contain_multiple_lifecycles() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let tc = g.regex().alphabet().sym("TC").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw_restart = false;
        for _ in 0..100 {
            let p = g.generate(&mut rng, GenerateOptions::cyclic(32));
            assert_eq!(p.len(), 32);
            if p.symbols().iter().filter(|&&s| s == tc).count() > 1 {
                saw_restart = true;
            }
        }
        assert!(saw_restart, "cyclic generation should restart life cycles");
    }

    #[test]
    fn pattern_probability_is_positive_for_generated() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let p = g.generate(&mut rng, GenerateOptions::sized(16));
            assert!(g.pattern_probability(&p) > 0.0);
        }
    }

    #[test]
    fn suspend_is_always_followed_eventually_by_resume() {
        // In any *completed* pattern (ends with TD/TY), every TS is
        // followed by TR before the terminal service — guaranteed by the
        // regex structure; spot-check generation respects it.
        let g = PatternGenerator::pcore_paper().unwrap();
        let a = g.regex().alphabet();
        let (ts, tr) = (a.sym("TS").unwrap(), a.sym("TR").unwrap());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let p = g.generate(&mut rng, GenerateOptions::sized(64));
            let mut suspended = false;
            for &s in p.symbols() {
                if s == ts {
                    assert!(!suspended, "TS TS without TR is illegal");
                    suspended = true;
                } else if s == tr {
                    assert!(suspended, "TR without TS is illegal");
                    suspended = false;
                }
            }
        }
    }
}
