//! Serializable summaries of test reports.
//!
//! Full [`TestReport`](crate::TestReport)s embed kernel snapshots and
//! execution records that are not stable serialization targets; this
//! module distils the stable, machine-readable core — what CI dashboards
//! and the experiment harness archive.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::adaptive::TestReport;
use crate::detector::BugKind;

/// A machine-readable bug entry.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BugSummary {
    /// Classification: `"slave_crash"`, `"command_timeout"`,
    /// `"deadlock"`, `"starvation"`, `"livelock"`, `"task_fault"`.
    pub class: String,
    /// Human-readable description.
    pub detail: String,
    /// Virtual detection time in cycles.
    pub detected_at: u64,
}

/// A machine-readable run summary (stable across versions).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ReportSummary {
    /// The regular expression tested against.
    pub regex: String,
    /// Number of patterns `n`.
    pub n: usize,
    /// Pattern size `s`.
    pub s: usize,
    /// Merge policy, rendered.
    pub merge_op: String,
    /// Master seed.
    pub seed: u64,
    /// Whether the merged pattern was fully delivered.
    pub completed: bool,
    /// Remote commands issued.
    pub commands_issued: u64,
    /// Error replies received.
    pub error_replies: u64,
    /// Ordering (legality) violations among the errors.
    pub ordering_errors: usize,
    /// Virtual cycles consumed.
    pub cycles: u64,
    /// DFA transition coverage in `[0, 1]`.
    pub transition_coverage: f64,
    /// Detected bugs.
    pub bugs: Vec<BugSummary>,
}

fn classify(kind: &BugKind) -> &'static str {
    match kind {
        BugKind::SlaveCrash { .. } => "slave_crash",
        BugKind::CommandTimeout { .. } => "command_timeout",
        BugKind::Deadlock { .. } => "deadlock",
        BugKind::CrossCoreDeadlock { .. } => "cross_core_deadlock",
        BugKind::Starvation { .. } => "starvation",
        BugKind::Livelock { .. } => "livelock",
        BugKind::TaskFault { .. } => "task_fault",
    }
}

impl ReportSummary {
    /// Extracts the stable summary of a report.
    #[must_use]
    pub fn from_report(report: &TestReport) -> ReportSummary {
        ReportSummary {
            regex: report.config.regex_source.clone(),
            n: report.config.n,
            s: report.config.s,
            merge_op: format!("{:?}", report.config.op),
            seed: report.config.seed,
            completed: report.completed,
            commands_issued: report.commands_issued,
            error_replies: report.error_replies,
            ordering_errors: report.ordering_errors(),
            cycles: report.cycles,
            transition_coverage: report.coverage.transition_coverage(),
            bugs: report
                .bugs
                .iter()
                .map(|b| BugSummary {
                    class: classify(&b.kind).to_owned(),
                    detail: b.detail(),
                    detected_at: b.detected_at.get(),
                })
                .collect(),
        }
    }
}

impl TestReport {
    /// The stable machine-readable summary (serializable with serde).
    #[must_use]
    pub fn machine_summary(&self) -> ReportSummary {
        ReportSummary::from_report(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::{AdaptiveTest, AdaptiveTestConfig};
    use ptest_pcore::{Op, Program};

    fn run() -> TestReport {
        AdaptiveTest::run(
            AdaptiveTestConfig {
                n: 2,
                s: 6,
                seed: 4,
                ..AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            },
        )
        .unwrap()
    }

    #[test]
    fn summary_mirrors_report() {
        let report = run();
        let s = report.machine_summary();
        assert_eq!(s.n, 2);
        assert_eq!(s.s, 6);
        assert_eq!(s.seed, 4);
        assert_eq!(s.completed, report.completed);
        assert_eq!(s.commands_issued, report.commands_issued);
        assert_eq!(s.bugs.len(), report.bugs.len());
        assert!(s.regex.contains("TC"));
    }

    #[test]
    fn bug_classification_covers_all_kinds() {
        use ptest_pcore::{KernelPanic, TaskFault, TaskId};
        let kinds = [
            BugKind::SlaveCrash {
                panic: KernelPanic::OutOfMemory { requested: 1 },
            },
            BugKind::CommandTimeout { overdue: 1 },
            BugKind::Deadlock {
                cycle: vec![TaskId::new(0)],
            },
            BugKind::CrossCoreDeadlock {
                cycle: vec![(ptest_soc::CoreId::Slave(0), TaskId::new(0))],
            },
            BugKind::Starvation {
                task: TaskId::new(0),
                runnable: true,
            },
            BugKind::Livelock {
                tasks: vec![TaskId::new(0)],
            },
            BugKind::TaskFault {
                task: TaskId::new(0),
                fault: TaskFault::StackOverflow,
            },
        ];
        let classes: std::collections::BTreeSet<&str> = kinds.iter().map(classify).collect();
        assert_eq!(classes.len(), kinds.len(), "each kind has a distinct class");
    }
}
