//! Reproducer minimization and root-cause interleaving reports.
//!
//! At campaign scale detected bugs are cheap, but each reproducer is a
//! `(pattern seed, schedule seed, memory seed)` triple whose replay
//! spans thousands of steps. This module shrinks a detected trial down
//! to its essence, delta-debugging style (the same shrink idiom as
//! proptest: try a smaller candidate, keep it only if the failure still
//! reproduces):
//!
//! 1. **Pattern shrink** — greedily drop chunks of pattern symbols,
//!    re-validating detection after every removal. Every candidate is a
//!    complete deterministic trial through the engine's normal
//!    merge → commit → detect path
//!    ([`TrialOverrides::patterns`](crate::trial::TrialOverrides)), so
//!    "still detects" means exactly what it means in production.
//! 2. **Schedule shrink** — binary-search (ddmin) the minimal set of
//!    [`RandomPriorityScheduler`](ptest_master::RandomPriorityScheduler)
//!    priority-change points that still triggers, via the scheduler's
//!    [`change_point_mask`](ptest_master::RandomPriorityConfig::change_point_mask).
//!    Masking never re-seeds anything: the surviving demotions land on
//!    exactly the cycles they did in the original trial.
//! 3. **Root-cause report** — replay the minimized triple once with
//!    full-trace capture and emit the cross-core interleaving window
//!    around the failure: racing shared-variable accesses, semaphore
//!    hand-offs and blocking edges, aligned on one virtual-time axis
//!    (after the synchronization-point-aligned timelines of
//!    instruction-driven multicore debuggers).
//!
//! The product is a [`MinimizedRepro`]: self-contained, serializable,
//! and replayable — [`replay_minimized`] re-runs it from the stored
//! patterns, mask and seeds and must reproduce the stored
//! [`ReportSummary`] byte-identically (minimization itself validates
//! this before returning).

use ptest_automata::Sym;
use ptest_master::{
    InterruptConfig, MemoryModelSpec, PreemptionSpec, RandomPriorityConfig, ScheduleSpec,
    StoreBufferConfig,
};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::adaptive::AdaptiveTestError;
use crate::pattern::TestPattern;
use crate::report::ReportSummary;
use crate::scenario::Scenario;
use crate::trial::{TrialEngine, TrialOverrides, TrialScratch, TrialTrace};

/// Knobs of the shrink loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimizeConfig {
    /// Upper bound on candidate trials the shrink loop may run. The loop
    /// keeps its best-so-far reproducer when the budget runs out, so a
    /// tight budget degrades minimality, never correctness.
    pub max_candidates: usize,
    /// Cycles of history before the failure anchor included in the
    /// root-cause window.
    pub trace_window: u64,
    /// Upper bound on timeline events kept in the root-cause report (the
    /// tail closest to the failure wins).
    pub max_events: usize,
}

impl Default for MinimizeConfig {
    fn default() -> MinimizeConfig {
        MinimizeConfig {
            max_candidates: 256,
            trace_window: 600,
            max_events: 256,
        }
    }
}

/// Why minimization could not produce a reproducer.
#[derive(Debug)]
pub enum MinimizeError {
    /// The original trial detected no bug — nothing to minimize.
    NoBug,
    /// A candidate trial failed to run at all (configuration-level
    /// failure; candidate trials that merely don't detect are normal).
    Trial(AdaptiveTestError),
    /// The minimized triple did not replay to a byte-identical summary —
    /// a determinism regression in the engine, never expected.
    UnstableReplay,
}

impl std::fmt::Display for MinimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinimizeError::NoBug => write!(f, "the original trial detects no bug"),
            MinimizeError::Trial(e) => write!(f, "candidate trial failed: {e}"),
            MinimizeError::UnstableReplay => {
                write!(f, "minimized reproducer did not replay byte-identically")
            }
        }
    }
}

impl std::error::Error for MinimizeError {}

impl From<AdaptiveTestError> for MinimizeError {
    fn from(e: AdaptiveTestError) -> MinimizeError {
        MinimizeError::Trial(e)
    }
}

/// The minimized trial's schedule, in primitive replayable parts (the
/// serialization model of a possibly-masked
/// [`ScheduleSpec`](ptest_master::ScheduleSpec)).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MinimizedSchedule {
    /// `true` for a lock-step trial (no change points to shrink).
    pub lock_step: bool,
    /// The *seeded* change-point budget (PCT's `d`) — masking never
    /// changes it, so the surviving points land on their original
    /// cycles.
    pub change_points: usize,
    /// Sampling horizon of the change points.
    pub horizon: u64,
    /// Fairness backstop window.
    pub fairness_window: u32,
    /// Which seeded change points the minimized schedule keeps (bit `i`
    /// = `i`-th point in ascending cycle order).
    pub change_point_mask: u64,
    /// Number of active change points under the mask.
    pub active_change_points: usize,
}

impl MinimizedSchedule {
    fn lock_step() -> MinimizedSchedule {
        MinimizedSchedule {
            lock_step: true,
            change_points: 0,
            horizon: 0,
            fairness_window: 0,
            change_point_mask: 0,
            active_change_points: 0,
        }
    }

    fn from_random_priority(rp: RandomPriorityConfig, mask: u64) -> MinimizedSchedule {
        let cfg = RandomPriorityConfig {
            change_point_mask: mask,
            ..rp
        };
        MinimizedSchedule {
            lock_step: false,
            change_points: rp.change_points,
            horizon: rp.horizon,
            fairness_window: rp.fairness_window,
            change_point_mask: mask,
            active_change_points: cfg.active_change_points(),
        }
    }

    /// Reconstructs the schedule spec this minimized schedule replays
    /// under.
    #[must_use]
    pub fn spec(&self) -> ScheduleSpec {
        if self.lock_step {
            ScheduleSpec::LockStep
        } else {
            ScheduleSpec::RandomPriority(RandomPriorityConfig {
                change_points: self.change_points,
                horizon: self.horizon,
                fairness_window: self.fairness_window,
                change_point_mask: self.change_point_mask,
            })
        }
    }
}

/// The minimized trial's memory model, in primitive replayable parts.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MinimizedMemory {
    /// `true` for the store-buffer model, `false` for seq-cst.
    pub store_buffer: bool,
    /// Store-buffer max delay (0 under seq-cst).
    pub max_delay: u64,
    /// Store-buffer capacity (0 under seq-cst).
    pub capacity: usize,
}

impl MinimizedMemory {
    fn capture(memory: MemoryModelSpec) -> MinimizedMemory {
        match memory {
            MemoryModelSpec::SeqCst => MinimizedMemory {
                store_buffer: false,
                max_delay: 0,
                capacity: 0,
            },
            MemoryModelSpec::StoreBuffer(cfg) => MinimizedMemory {
                store_buffer: true,
                max_delay: cfg.max_delay,
                capacity: cfg.capacity,
            },
        }
    }

    /// Reconstructs the memory-model spec this minimized trial replays
    /// under.
    #[must_use]
    pub fn spec(&self) -> MemoryModelSpec {
        if self.store_buffer {
            MemoryModelSpec::StoreBuffer(StoreBufferConfig {
                max_delay: self.max_delay,
                capacity: self.capacity,
            })
        } else {
            MemoryModelSpec::SeqCst
        }
    }
}

/// The minimized trial's preemption/interrupt axis, in primitive
/// replayable parts. The injection mask is the interrupt analogue of
/// [`MinimizedSchedule::change_point_mask`]: it selects among the
/// *seeded* injection events, so every surviving ISR fires on exactly
/// the cycle it did in the original trial and the whole axis still
/// replays from the stored irq seed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MinimizedPreemption {
    /// `true` for an unpreempted trial (nothing on this axis to shrink).
    pub inert: bool,
    /// Quantum slice length in cycles (`None` without quantum
    /// scheduling).
    pub quantum: Option<u32>,
    /// Max clock-skew rate in parts per 1024 (`None` without skew).
    pub skew_max_rate: Option<u32>,
    /// The *seeded* interrupt-event budget — masking never changes it.
    pub irq_count: usize,
    /// Sampling horizon of the injection cycles.
    pub irq_horizon: u64,
    /// Which seeded injection events the minimized trial keeps (bit `i`
    /// = `i`-th event in firing order).
    pub injection_mask: u64,
    /// Number of active injections under the mask.
    pub active_injections: usize,
}

impl MinimizedPreemption {
    fn capture(spec: &PreemptionSpec, mask: u64) -> MinimizedPreemption {
        let irq = spec.interrupts.map(|ic| InterruptConfig {
            injection_mask: mask,
            ..ic
        });
        MinimizedPreemption {
            inert: spec.is_inert(),
            quantum: spec.quantum.map(|q| q.cycles),
            skew_max_rate: spec.clock_skew.map(|s| s.max_rate),
            irq_count: irq.map_or(0, |ic| ic.count),
            irq_horizon: irq.map_or(0, |ic| ic.horizon),
            injection_mask: irq.map_or(0, |ic| ic.injection_mask),
            active_injections: irq.map_or(0, |ic| ic.active_injections()),
        }
    }

    /// Reconstructs the preemption spec this minimized trial replays
    /// under.
    #[must_use]
    pub fn spec(&self) -> PreemptionSpec {
        PreemptionSpec {
            quantum: self
                .quantum
                .map(|cycles| ptest_master::QuantumConfig { cycles }),
            clock_skew: self
                .skew_max_rate
                .map(|max_rate| ptest_master::ClockSkewConfig { max_rate }),
            interrupts: if self.irq_count == 0 && self.irq_horizon == 0 {
                None
            } else {
                Some(InterruptConfig {
                    count: self.irq_count,
                    horizon: self.irq_horizon,
                    injection_mask: self.injection_mask,
                })
            },
        }
    }
}

/// One event of the root-cause timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct InterleavingEvent {
    /// Virtual cycle of the event.
    pub at: u64,
    /// Core the event occurred on (`"ARM"`, `"DSP"`, `"DSP1"`, …).
    pub core: String,
    /// Event category (`"var-write"`, `"sem-wait"`, `"fault"`, …).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for InterleavingEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>8}  {:<5} {:<10} {}",
            self.at, self.core, self.kind, self.detail
        )
    }
}

/// The cross-core interleaving window around a failure: what the
/// minimized trial's cores were doing to shared state in the cycles
/// leading up to the bug, on one merged virtual-time axis.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RootCauseReport {
    /// Class of the explained bug (`"task_fault"`, `"deadlock"`, …).
    pub bug_class: String,
    /// Detail line of the explained bug.
    pub bug_detail: String,
    /// Cycle the detector reported the bug at.
    pub detected_at: u64,
    /// The failure anchor: the faulting event's cycle when the trace
    /// names one, otherwise `detected_at`.
    pub anchor: u64,
    /// First cycle of the reported window.
    pub window_start: u64,
    /// Merged cross-core timeline of the window, time-ascending (ties in
    /// master-then-slave-index order). Capped at
    /// [`MinimizeConfig::max_events`], keeping the tail.
    pub events: Vec<InterleavingEvent>,
    /// Timeline events dropped by the cap.
    pub events_dropped: usize,
    /// Shared variables accessed from more than one core (with at least
    /// one write) inside the window — the racing accesses.
    pub racing_vars: Vec<String>,
    /// The accesses (reads, writes, cross-core mirror deliveries) to the
    /// racing variables, in window order.
    pub racing_accesses: Vec<InterleavingEvent>,
    /// Semaphore waits, posts and cross-core semaphore wakes in the
    /// window.
    pub semaphore_handoffs: Vec<InterleavingEvent>,
    /// Blocking edges: tasks blocking on semaphores or mutexes in the
    /// window.
    pub blocking_edges: Vec<InterleavingEvent>,
}

impl RootCauseReport {
    /// Renders the report as human-readable text.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "root cause: {} — {}", self.bug_class, self.bug_detail);
        let _ = writeln!(
            out,
            "window: cycles {}..={} (detected at {})",
            self.window_start, self.anchor, self.detected_at
        );
        if self.racing_vars.is_empty() {
            let _ = writeln!(out, "racing shared variables: none observed in window");
        } else {
            let _ = writeln!(
                out,
                "racing shared variables: {}",
                self.racing_vars.join(", ")
            );
            for e in &self.racing_accesses {
                let _ = writeln!(out, "  {e}");
            }
        }
        if !self.semaphore_handoffs.is_empty() {
            let _ = writeln!(out, "semaphore hand-offs:");
            for e in &self.semaphore_handoffs {
                let _ = writeln!(out, "  {e}");
            }
        }
        if !self.blocking_edges.is_empty() {
            let _ = writeln!(out, "blocking edges:");
            for e in &self.blocking_edges {
                let _ = writeln!(out, "  {e}");
            }
        }
        let _ = writeln!(out, "interleaving ({} events):", self.events.len());
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "  … {} earlier events dropped by the cap …",
                self.events_dropped
            );
        }
        for e in &self.events {
            let _ = writeln!(out, "  {e}");
        }
        out
    }
}

/// A minimized, explained, self-contained reproducer: the shrink loop's
/// product. Replayable via [`replay_minimized`] from the stored parts
/// alone.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MinimizedRepro {
    /// Scenario the trial ran.
    pub scenario: String,
    /// Class of the bug this reproducer triggers.
    pub bug_class: String,
    /// Pattern seed of the original trial (echoed for provenance; the
    /// minimized patterns are stored explicitly).
    pub seed: u64,
    /// Schedule seed — the minimized schedule replays from it.
    pub schedule_seed: u64,
    /// Memory seed — the memory model replays from it.
    pub memory_seed: u64,
    /// Interrupt/preemption seed — the minimized preemption axis replays
    /// from it, completing the stored quadruple.
    pub irq_seed: u64,
    /// Label of the minimized schedule spec.
    pub schedule_label: String,
    /// Label of the memory-model spec.
    pub memory_label: String,
    /// Label of the minimized preemption spec.
    pub preemption_label: String,
    /// The minimized schedule, replayable.
    pub schedule: MinimizedSchedule,
    /// The memory model, replayable.
    pub memory: MinimizedMemory,
    /// The preemption/interrupt axis, replayable (injection mask
    /// minimized).
    pub preemption: MinimizedPreemption,
    /// Total pattern symbols before shrinking.
    pub original_symbols: usize,
    /// Total pattern symbols after shrinking.
    pub minimized_symbols: usize,
    /// Original patterns, rendered as space-separated symbol names.
    pub original_patterns: Vec<String>,
    /// Minimized patterns, rendered as space-separated symbol names —
    /// parsed back by [`replay_minimized`].
    pub minimized_patterns: Vec<String>,
    /// Seeded change points of the original schedule (active under its
    /// mask).
    pub original_change_points: usize,
    /// Active change points of the minimized schedule.
    pub minimized_change_points: usize,
    /// Active interrupt injections of the original preemption spec.
    pub original_injections: usize,
    /// Active interrupt injections after the injection-mask ddmin.
    pub minimized_injections: usize,
    /// Candidate trials the shrink loop executed.
    pub candidates: usize,
    /// Machine summary of the minimized trial — replays must reproduce
    /// this byte-identically.
    pub summary: ReportSummary,
    /// The root-cause interleaving window of the minimized trial.
    pub root_cause: RootCauseReport,
}

/// Shrinks one detected scenario trial to a [`MinimizedRepro`].
///
/// `(seed, schedule_seed, memory_seed, irq_seed, schedule, memory,
/// preemption)` name the original trial exactly as the campaign ran it;
/// the engine must be the one (same configuration, same learned
/// distribution) that produced the hit, or the original trial will not
/// reproduce.
///
/// `target_class` picks which of the trial's bug classes to shrink
/// toward (`None` = the first detected bug) — a trial can detect several
/// classes, and a campaign minimizes each class off the trial that first
/// hit it.
///
/// # Errors
///
/// [`MinimizeError::NoBug`] when the named trial does not detect the
/// target class; [`MinimizeError::Trial`] when a trial fails to run at
/// all.
#[allow(clippy::too_many_arguments)]
pub fn minimize_scenario_trial(
    engine: &TrialEngine,
    scenario: &dyn Scenario,
    seed: u64,
    schedule_seed: u64,
    memory_seed: u64,
    irq_seed: u64,
    schedule: ScheduleSpec,
    memory: MemoryModelSpec,
    preemption: PreemptionSpec,
    target_class: Option<&str>,
    cfg: &MinimizeConfig,
    scratch: &mut TrialScratch,
) -> Result<MinimizedRepro, MinimizeError> {
    let alphabet = engine.generator().regex().alphabet();

    // The original trial, exactly as recorded.
    let original = engine.run_scenario_trial_overridden(
        scenario,
        seed,
        schedule_seed,
        memory_seed,
        TrialOverrides {
            schedule: Some(schedule),
            memory: Some(memory),
            preemption: Some(preemption),
            irq_seed: Some(irq_seed),
            ..TrialOverrides::default()
        },
        scratch,
    )?;
    let original_summary = original.machine_summary();
    let target = match target_class {
        Some(class) => original_summary.bugs.iter().find(|b| b.class == class),
        None => original_summary.bugs.first(),
    };
    let Some(target) = target else {
        return Err(MinimizeError::NoBug);
    };
    let bug_class = target.class.clone();
    let original_patterns: Vec<String> = original
        .patterns
        .iter()
        .map(|p| p.render(alphabet))
        .collect();
    let original_symbols: usize = original.patterns.iter().map(TestPattern::len).sum();

    let candidates = std::cell::Cell::new(0usize);
    // Runs one candidate (patterns × schedule) trial and reports whether
    // the target bug class still manifests.
    let detects = |patterns: &[TestPattern],
                   spec: ScheduleSpec,
                   preempt: PreemptionSpec,
                   scratch: &mut TrialScratch|
     -> Result<bool, MinimizeError> {
        candidates.set(candidates.get() + 1);
        let report = engine.run_scenario_trial_overridden(
            scenario,
            seed,
            schedule_seed,
            memory_seed,
            TrialOverrides {
                schedule: Some(spec),
                memory: Some(memory),
                preemption: Some(preempt),
                irq_seed: Some(irq_seed),
                patterns: Some(patterns),
                ..TrialOverrides::default()
            },
            scratch,
        )?;
        Ok(report
            .machine_summary()
            .bugs
            .iter()
            .any(|b| b.class == bug_class))
    };

    // --- 1. Pattern shrink: greedy chunked removal over the flattened
    // symbol coordinates, re-validated per candidate (ddmin's reduce
    // phase; the pattern count is structural — pattern `i` programs
    // slave task `i` — so only symbols shrink, never patterns).
    let mut current: Vec<Vec<Sym>> = original
        .patterns
        .iter()
        .map(|p| p.symbols().to_vec())
        .collect();
    let total = |pats: &[Vec<Sym>]| pats.iter().map(Vec::len).sum::<usize>();
    let as_patterns =
        |pats: &[Vec<Sym>]| -> Vec<TestPattern> { pats.iter().cloned().map(Into::into).collect() };
    // Removes flattened coordinates [pos, pos + len) across the pattern
    // boundaries.
    let remove_range = |pats: &[Vec<Sym>], pos: usize, len: usize| -> Vec<Vec<Sym>> {
        let mut out = Vec::with_capacity(pats.len());
        let mut global = 0usize;
        for p in pats {
            let mut kept = Vec::with_capacity(p.len());
            for &sym in p {
                if !(global >= pos && global < pos + len) {
                    kept.push(sym);
                }
                global += 1;
            }
            out.push(kept);
        }
        out
    };

    let mut chunk = (total(&current) / 2).max(1);
    'pattern_shrink: loop {
        let mut progressed = false;
        let mut pos = 0usize;
        while pos < total(&current) {
            if candidates.get() >= cfg.max_candidates {
                break 'pattern_shrink;
            }
            let candidate = remove_range(&current, pos, chunk);
            if detects(&as_patterns(&candidate), schedule, preemption, scratch)? {
                current = candidate;
                progressed = true;
                // The coordinates shifted left; rescan from here.
            } else {
                pos += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    let minimized_patterns_syms = as_patterns(&current);

    // --- 2. Schedule shrink: ddmin over the active change-point bits.
    // The mask selects among the *seeded* points, so every surviving
    // demotion lands on its original cycle and the whole thing still
    // replays from `schedule_seed`.
    let minimized_schedule = match schedule {
        ScheduleSpec::LockStep => MinimizedSchedule::lock_step(),
        ScheduleSpec::RandomPriority(rp) => {
            let masked = |mask: u64| {
                ScheduleSpec::RandomPriority(RandomPriorityConfig {
                    change_point_mask: mask,
                    ..rp
                })
            };
            let active: Vec<usize> = (0..rp.change_points.min(64))
                .filter(|&i| rp.change_point_mask & (1 << i) != 0)
                .collect();
            let active = ddmin_mask_bits(
                active,
                |mask| detects(&minimized_patterns_syms, masked(mask), preemption, scratch),
                || candidates.get() >= cfg.max_candidates,
            )?;
            MinimizedSchedule::from_random_priority(rp, mask_of(&active))
        }
    };
    let minimized_spec = minimized_schedule.spec();

    // --- 3. Interrupt-injection shrink: the same ddmin, this time over
    // the seeded injection events' mask — the interrupt analogue of the
    // schedule shrink (both masks filter a sorted seeded set without
    // re-seeding, so survivors fire on their original cycles).
    let minimized_preemption = match preemption.interrupts {
        None => MinimizedPreemption::capture(&preemption, 0),
        Some(ic) => {
            let masked = |mask: u64| PreemptionSpec {
                interrupts: Some(InterruptConfig {
                    injection_mask: mask,
                    ..ic
                }),
                ..preemption
            };
            let active: Vec<usize> = (0..ic.count.min(64))
                .filter(|&i| ic.injection_mask & (1 << i) != 0)
                .collect();
            let active = ddmin_mask_bits(
                active,
                |mask| {
                    detects(
                        &minimized_patterns_syms,
                        minimized_spec,
                        masked(mask),
                        scratch,
                    )
                },
                || candidates.get() >= cfg.max_candidates,
            )?;
            MinimizedPreemption::capture(&preemption, mask_of(&active))
        }
    };
    let minimized_preempt_spec = minimized_preemption.spec();

    // --- 4. Validate byte-identical replay: the minimized quadruple
    // must detect the same class twice with identical machine summaries.
    let run_minimized = |scratch: &mut TrialScratch,
                         trace: Option<&mut TrialTrace>|
     -> Result<crate::TestReport, MinimizeError> {
        Ok(engine.run_scenario_trial_overridden(
            scenario,
            seed,
            schedule_seed,
            memory_seed,
            TrialOverrides {
                schedule: Some(minimized_spec),
                memory: Some(memory),
                preemption: Some(minimized_preempt_spec),
                irq_seed: Some(irq_seed),
                patterns: Some(&minimized_patterns_syms),
                capture_trace: trace,
            },
            scratch,
        )?)
    };
    let first = run_minimized(scratch, None)?;
    let mut trace = TrialTrace::default();
    let replayed = run_minimized(scratch, Some(&mut trace))?;
    let summary = first.machine_summary();
    if summary != replayed.machine_summary() {
        return Err(MinimizeError::UnstableReplay);
    }
    if !summary.bugs.iter().any(|b| b.class == bug_class) {
        return Err(MinimizeError::UnstableReplay);
    }

    let root_cause = build_root_cause(&summary, &bug_class, &trace, cfg);
    let original_rp_points = match schedule {
        ScheduleSpec::LockStep => 0,
        ScheduleSpec::RandomPriority(rp) => rp.active_change_points(),
    };
    Ok(MinimizedRepro {
        scenario: scenario.name().to_owned(),
        bug_class,
        seed,
        schedule_seed,
        memory_seed,
        irq_seed,
        schedule_label: minimized_spec.label(),
        memory_label: memory.label(),
        preemption_label: minimized_preempt_spec.label(),
        schedule: minimized_schedule,
        memory: MinimizedMemory::capture(memory),
        preemption: minimized_preemption.clone(),
        original_symbols,
        minimized_symbols: minimized_patterns_syms.iter().map(TestPattern::len).sum(),
        original_patterns,
        minimized_patterns: minimized_patterns_syms
            .iter()
            .map(|p| p.render(alphabet))
            .collect(),
        original_change_points: original_rp_points,
        minimized_change_points: match &minimized_schedule_view(&minimized_spec) {
            Some(cfg) => cfg.active_change_points(),
            None => 0,
        },
        original_injections: preemption.interrupts.map_or(0, |ic| ic.active_injections()),
        minimized_injections: minimized_preemption.active_injections,
        candidates: candidates.get(),
        summary,
        root_cause,
    })
}

fn mask_of(bits: &[usize]) -> u64 {
    bits.iter().fold(0u64, |m, &b| m | (1 << b))
}

/// The shared ddmin over a set of active mask bits, used by both the
/// schedule change-point shrink and the interrupt-injection shrink:
/// first try the empty mask, then repeatedly drop chunks (testing the
/// complement) at refining granularity, and finally retry dropping a
/// lone survivor. `detects_mask` runs one candidate trial under the
/// given mask; `exhausted` reports whether the candidate budget is
/// spent.
fn ddmin_mask_bits(
    mut active: Vec<usize>,
    mut detects_mask: impl FnMut(u64) -> Result<bool, MinimizeError>,
    exhausted: impl Fn() -> bool,
) -> Result<Vec<usize>, MinimizeError> {
    // Fast path: none of the masked events needed at all.
    if !active.is_empty() && !exhausted() && detects_mask(0)? {
        active.clear();
    }
    // ddmin: split the active set into n chunks, try dropping each chunk
    // (testing its complement); refine granularity until single bits
    // fail to drop.
    let mut granularity = 2usize;
    while active.len() > 1 && !exhausted() {
        let n = granularity.min(active.len());
        let chunk_len = active.len().div_ceil(n);
        let mut reduced = false;
        for c in 0..n {
            if exhausted() {
                break;
            }
            let lo = c * chunk_len;
            let hi = ((c + 1) * chunk_len).min(active.len());
            if lo >= hi {
                continue;
            }
            let complement: Vec<usize> = active
                .iter()
                .enumerate()
                .filter(|&(i, _)| i < lo || i >= hi)
                .map(|(_, &b)| b)
                .collect();
            if detects_mask(mask_of(&complement))? {
                active = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
        }
        if !reduced {
            if granularity >= active.len() {
                break;
            }
            granularity = (granularity * 2).min(active.len());
        }
    }
    // A single surviving bit might still be droppable.
    if active.len() == 1 && !exhausted() && detects_mask(0)? {
        active.clear();
    }
    Ok(active)
}

fn minimized_schedule_view(spec: &ScheduleSpec) -> Option<RandomPriorityConfig> {
    match spec {
        ScheduleSpec::LockStep => None,
        ScheduleSpec::RandomPriority(cfg) => Some(*cfg),
    }
}

/// Convenience wrapper of [`minimize_scenario_trial`] at the engine's
/// compiled schedule/memory specs — for reproducers recorded by plain
/// (non-rotating) runs.
///
/// # Errors
///
/// As for [`minimize_scenario_trial`].
pub fn minimize_trial(
    engine: &TrialEngine,
    scenario: &dyn Scenario,
    seed: u64,
    schedule_seed: u64,
    memory_seed: u64,
    cfg: &MinimizeConfig,
    scratch: &mut TrialScratch,
) -> Result<MinimizedRepro, MinimizeError> {
    minimize_scenario_trial(
        engine,
        scenario,
        seed,
        schedule_seed,
        memory_seed,
        engine
            .config()
            .irq_seed
            .unwrap_or_else(|| crate::trial::derived_irq_seed(seed)),
        engine.config().schedule,
        engine.config().memory,
        engine.config().preemption,
        None,
        cfg,
        scratch,
    )
}

/// Replays a [`MinimizedRepro`] from its stored parts: parses the
/// minimized patterns back through the engine's alphabet and re-runs the
/// trial under the minimized schedule mask and stored memory model. The
/// result's machine summary must equal [`MinimizedRepro::summary`] —
/// minimization validated exactly this before returning the repro.
///
/// # Errors
///
/// As for [`TrialEngine::run_trial`].
pub fn replay_minimized(
    engine: &TrialEngine,
    scenario: &dyn Scenario,
    repro: &MinimizedRepro,
    scratch: &mut TrialScratch,
) -> Result<crate::TestReport, AdaptiveTestError> {
    let alphabet = engine.generator().regex().alphabet();
    let patterns: Vec<TestPattern> = repro
        .minimized_patterns
        .iter()
        .map(|rendered| {
            rendered
                .split_whitespace()
                .filter_map(|name| alphabet.sym(name))
                .collect::<Vec<Sym>>()
                .into()
        })
        .collect();
    engine.run_scenario_trial_overridden(
        scenario,
        repro.seed,
        repro.schedule_seed,
        repro.memory_seed,
        TrialOverrides {
            schedule: Some(repro.schedule.spec()),
            memory: Some(repro.memory.spec()),
            preemption: Some(repro.preemption.spec()),
            irq_seed: Some(repro.irq_seed),
            patterns: Some(&patterns),
            ..TrialOverrides::default()
        },
        scratch,
    )
}

/// Builds the interleaving window around `bug_class`'s first hit from a
/// captured trial trace.
fn build_root_cause(
    summary: &ReportSummary,
    bug_class: &str,
    trace: &TrialTrace,
    cfg: &MinimizeConfig,
) -> RootCauseReport {
    let bug = summary
        .bugs
        .iter()
        .find(|b| b.class == bug_class)
        .expect("caller validated the class is present");

    // Merge all per-core timelines onto one time axis. Master events
    // rank before slave events at the same cycle (the master's command
    // issue precedes the slave's same-cycle service), slaves by index.
    let mut merged: Vec<(u64, usize, InterleavingEvent)> = Vec::new();
    let streams = std::iter::once((0usize, &trace.master))
        .chain(trace.kernels.iter().enumerate().map(|(i, k)| (i + 1, k)));
    for (rank, events) in streams {
        for e in events {
            merged.push((
                e.at.get(),
                rank,
                InterleavingEvent {
                    at: e.at.get(),
                    core: e.core.to_string(),
                    kind: e.kind.to_owned(),
                    detail: e.detail.clone(),
                },
            ));
        }
    }
    merged.sort_by_key(|a| (a.0, a.1));

    // Anchor on the faulting event when the trace names one at or before
    // detection (the detector only observes at check intervals, so the
    // fault itself is usually earlier).
    let detected_at = bug.detected_at;
    let anchor = merged
        .iter()
        .rev()
        .find(|(at, _, e)| *at <= detected_at && (e.kind == "fault" || e.kind == "panic"))
        .map_or(detected_at, |(at, _, _)| *at);
    let window_start = anchor.saturating_sub(cfg.trace_window);

    let window: Vec<InterleavingEvent> = merged
        .iter()
        .filter(|(at, _, _)| *at >= window_start && *at <= anchor)
        .map(|(_, _, e)| e.clone())
        .collect();

    // Racing shared variables: accessed from ≥ 2 distinct cores with at
    // least one write (or cross-core mirror delivery) in the window.
    use std::collections::BTreeMap;
    let mut vars: BTreeMap<String, (std::collections::BTreeSet<String>, bool)> = BTreeMap::new();
    for e in &window {
        let var = match e.kind.as_str() {
            "var-read" | "var-write" => e
                .detail
                .split_whitespace()
                .nth(1)
                .and_then(|tok| tok.split('=').next()),
            "var-mirror" => e.detail.split('=').next(),
            _ => None,
        };
        if let Some(var) = var {
            let entry = vars.entry(var.to_owned()).or_default();
            entry.0.insert(e.core.clone());
            if e.kind != "var-read" {
                entry.1 = true;
            }
        }
    }
    let racing_vars: Vec<String> = vars
        .iter()
        .filter(|(_, (cores, written))| cores.len() >= 2 && *written)
        .map(|(v, _)| v.clone())
        .collect();
    let is_racing_access = |e: &InterleavingEvent| {
        let var = match e.kind.as_str() {
            "var-read" | "var-write" => e
                .detail
                .split_whitespace()
                .nth(1)
                .and_then(|tok| tok.split('=').next()),
            "var-mirror" => e.detail.split('=').next(),
            _ => None,
        };
        var.is_some_and(|v| racing_vars.iter().any(|r| r == v))
    };
    let racing_accesses: Vec<InterleavingEvent> = window
        .iter()
        .filter(|e| is_racing_access(e))
        .cloned()
        .collect();
    let semaphore_handoffs: Vec<InterleavingEvent> = window
        .iter()
        .filter(|e| matches!(e.kind.as_str(), "sem-wait" | "sem-post" | "isr"))
        .cloned()
        .collect();
    let blocking_edges: Vec<InterleavingEvent> = window
        .iter()
        .filter(|e| e.kind == "block" || (e.kind == "sem-wait" && e.detail.contains("blocks on")))
        .cloned()
        .collect();

    let events_dropped = window.len().saturating_sub(cfg.max_events);
    let events: Vec<InterleavingEvent> = window.into_iter().skip(events_dropped).collect();

    RootCauseReport {
        bug_class: bug.class.clone(),
        bug_detail: bug.detail.clone(),
        detected_at,
        anchor,
        window_start,
        events,
        events_dropped,
        racing_vars,
        racing_accesses,
        semaphore_handoffs,
        blocking_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BugSummary;
    use ptest_soc::{CoreId, TraceEvent};

    fn event(at: u64, core: CoreId, kind: &'static str, detail: &str) -> TraceEvent {
        TraceEvent {
            at: ptest_soc::Cycles::new(at),
            core,
            kind,
            detail: detail.to_owned(),
        }
    }

    fn faulting_summary(detected_at: u64) -> ReportSummary {
        ReportSummary {
            regex: "TC".to_owned(),
            n: 1,
            s: 1,
            merge_op: "Sequential".to_owned(),
            seed: 1,
            completed: true,
            commands_issued: 1,
            error_replies: 0,
            ordering_errors: 0,
            cycles: detected_at,
            transition_coverage: 1.0,
            bugs: vec![BugSummary {
                class: "task_fault".to_owned(),
                detail: "task fault: T0 stack overflow".to_owned(),
                detected_at,
            }],
        }
    }

    #[test]
    fn minimized_schedule_round_trips_through_its_spec() {
        let rp = RandomPriorityConfig {
            change_points: 3,
            ..RandomPriorityConfig::default()
        };
        let m = MinimizedSchedule::from_random_priority(rp, 0b101);
        assert!(!m.lock_step);
        assert_eq!(m.active_change_points, 2);
        match m.spec() {
            ScheduleSpec::RandomPriority(cfg) => {
                assert_eq!(cfg.change_points, 3);
                assert_eq!(cfg.change_point_mask, 0b101);
            }
            ScheduleSpec::LockStep => panic!("mask round-trip lost the scheduler"),
        }
        assert_eq!(
            MinimizedSchedule::lock_step().spec(),
            ScheduleSpec::LockStep
        );
    }

    #[test]
    fn minimized_memory_round_trips_through_its_spec() {
        let sb = MemoryModelSpec::StoreBuffer(StoreBufferConfig {
            max_delay: 7,
            capacity: 3,
        });
        assert_eq!(MinimizedMemory::capture(sb).spec(), sb);
        assert_eq!(
            MinimizedMemory::capture(MemoryModelSpec::SeqCst).spec(),
            MemoryModelSpec::SeqCst
        );
    }

    #[test]
    fn root_cause_windows_anchor_on_the_faulting_event() {
        let trace = TrialTrace {
            master: vec![event(5, CoreId::Master, "cmd", "cmd1 Create")],
            kernels: vec![
                vec![
                    event(6, CoreId::Slave(0), "var-write", "T0 v8=1"),
                    event(40, CoreId::Slave(0), "fault", "T0: stack overflow"),
                ],
                vec![
                    event(6, CoreId::Slave(1), "var-write", "T0 v8=2"),
                    event(7, CoreId::Slave(1), "var-read", "T0 v9=0"),
                    event(8, CoreId::Slave(1), "sem-wait", "T0 blocks on s1"),
                ],
            ],
        };
        // Detection happens later than the fault; the window anchors on
        // the fault event itself.
        let report = build_root_cause(
            &faulting_summary(90),
            "task_fault",
            &trace,
            &MinimizeConfig::default(),
        );
        assert_eq!(report.anchor, 40);
        assert_eq!(report.detected_at, 90);
        assert_eq!(report.racing_vars, ["v8"]);
        assert_eq!(report.racing_accesses.len(), 2);
        assert_eq!(report.semaphore_handoffs.len(), 1);
        assert_eq!(report.blocking_edges.len(), 1);
        assert_eq!(report.events_dropped, 0);
        // Same-cycle events order master first, then slaves by index.
        let at6: Vec<&str> = report
            .events
            .iter()
            .filter(|e| e.at == 6)
            .map(|e| e.core.as_str())
            .collect();
        assert_eq!(at6, ["DSP", "DSP1"]);
        let text = report.render_text();
        assert!(text.contains("root cause: task_fault"));
        assert!(text.contains("racing shared variables: v8"));
        assert!(text.contains("blocking edges:"));
    }

    #[test]
    fn root_cause_event_caps_keep_the_tail() {
        let kernels = vec![(0..50u64)
            .map(|i| event(i, CoreId::Slave(0), "sched", "run T0"))
            .collect()];
        let trace = TrialTrace {
            master: Vec::new(),
            kernels,
        };
        let report = build_root_cause(
            &faulting_summary(49),
            "task_fault",
            &trace,
            &MinimizeConfig {
                max_events: 10,
                ..MinimizeConfig::default()
            },
        );
        assert_eq!(report.events.len(), 10);
        assert_eq!(report.events_dropped, 40);
        assert_eq!(report.events.last().unwrap().at, 49);
        assert!(report
            .render_text()
            .contains("40 earlier events dropped by the cap"));
    }

    #[test]
    fn reads_alone_are_not_a_race() {
        let trace = TrialTrace {
            master: Vec::new(),
            kernels: vec![
                vec![event(1, CoreId::Slave(0), "var-read", "T0 v5=0")],
                vec![event(2, CoreId::Slave(1), "var-read", "T0 v5=0")],
            ],
        };
        let report = build_root_cause(
            &faulting_summary(10),
            "task_fault",
            &trace,
            &MinimizeConfig::default(),
        );
        assert!(report.racing_vars.is_empty(), "two readers do not race");
        assert!(report
            .render_text()
            .contains("racing shared variables: none observed in window"));
    }
}
