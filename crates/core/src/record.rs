//! State recording of concurrent processes (paper Definition 2).
//!
//! Each record is the five-tuple `(qm, qs, TP, SN, δS)`: the master
//! process state, the slave process state, the test pattern, the sequence
//! number of the current pattern position, and the remaining subsequence.
//! The bug detector reads these records to monitor testing progress, and
//! they are dumped into bug reports for reproduction (Figure 4 shows two
//! such records).

use std::fmt::Write as _;
use std::sync::Arc;

use ptest_automata::{Alphabet, Sym};
use ptest_pcore::{TaskId, TaskState};
use ptest_soc::CoreId;

/// The master-side state component `qm` of a state record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterState {
    /// The controlling process has not issued anything yet.
    Idle,
    /// Last observed issuing the given service (by wire code).
    Issuing(ptest_pcore::Service),
    /// Waiting for the response of the last issued service.
    AwaitingResponse(ptest_pcore::Service),
    /// The pattern is exhausted.
    Finished,
}

impl std::fmt::Display for MasterState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MasterState::Idle => write!(f, "idle"),
            MasterState::Issuing(s) => write!(f, "issue:{s}"),
            MasterState::AwaitingResponse(s) => write!(f, "await:{s}"),
            MasterState::Finished => write!(f, "finished"),
        }
    }
}

/// Definition 2: `(qm, qs, TP, SN, δS)` for one controlled slave process.
#[derive(Debug, Clone, PartialEq)]
pub struct StateRecord {
    /// Which test pattern (and hence which master/slave process pair)
    /// this record describes.
    pub pattern_index: usize,
    /// The slave core the controlled process runs on (always
    /// [`CoreId::Dsp`] on the dual-core platform; pattern `i` of an
    /// N-slave system runs on slave `i mod N`).
    pub slave_core: CoreId,
    /// `qm` — the state of the controlling master process.
    pub master_state: MasterState,
    /// `qs` — the state of the slave process (`None` before the first
    /// `task_create` completes).
    pub slave_task: Option<TaskId>,
    /// The slave task's scheduling state, if one is bound.
    pub slave_state: Option<TaskState>,
    /// `TP` — the full test pattern assigned to this process. Interned:
    /// every record of the same pattern shares one allocation (the
    /// committer hands out `Arc` clones), so dumping records in the trial
    /// hot loop no longer copies pattern buffers.
    pub test_pattern: Arc<[Sym]>,
    /// `SN` — the 1-based sequence number of the *current* position in
    /// the pattern (0 = nothing executed yet).
    pub sequence_number: usize,
}

impl StateRecord {
    /// `δS` — the subsequence of the test pattern still to be executed.
    #[must_use]
    pub fn remaining(&self) -> &[Sym] {
        &self.test_pattern[self.sequence_number.min(self.test_pattern.len())..]
    }

    /// Renders the record in the paper's Figure 4 style:
    /// `CP1 = (m2, s1, p1->p2->p3, 2, p3)`.
    #[must_use]
    pub fn render(&self, alphabet: &Alphabet) -> String {
        let mut out = String::new();
        self.render_into(alphabet, &mut out);
        out
    }

    /// [`StateRecord::render`] into a caller-owned buffer (appended):
    /// report loops that render many records reuse one `String` instead
    /// of building intermediate name vectors per record.
    pub fn render_into(&self, alphabet: &Alphabet, out: &mut String) {
        let write_seq = |out: &mut String, seq: &[Sym]| {
            if seq.is_empty() {
                out.push('-');
                return;
            }
            for (i, &s) in seq.iter().enumerate() {
                if i > 0 {
                    out.push_str("->");
                }
                out.push_str(alphabet.name(s).unwrap_or("?"));
            }
        };
        let _ = write!(out, "CP{} = ({}, ", self.pattern_index, self.master_state);
        // The slave core is only spelled out beyond slave 0, keeping the
        // dual-core rendering identical to the paper's Figure 4.
        match (self.slave_task, self.slave_state) {
            (Some(t), st) => {
                if self.slave_core != CoreId::Dsp {
                    let _ = write!(out, "{}:", self.slave_core);
                }
                match st {
                    Some(st) => {
                        let _ = write!(out, "{t}:{st}");
                    }
                    None => {
                        let _ = write!(out, "{t}");
                    }
                }
            }
            _ => out.push('-'),
        }
        out.push_str(", ");
        write_seq(out, &self.test_pattern);
        let _ = write!(out, ", {}, ", self.sequence_number);
        write_seq(out, self.remaining());
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::Service;

    fn record() -> (Alphabet, StateRecord) {
        let mut a = Alphabet::new();
        let tc = a.intern("TC");
        let tch = a.intern("TCH");
        let td = a.intern("TD");
        let r = StateRecord {
            pattern_index: 1,
            slave_core: CoreId::Dsp,
            master_state: MasterState::AwaitingResponse(Service::ChangePriority),
            slave_task: Some(TaskId::new(3)),
            slave_state: Some(TaskState::Ready),
            test_pattern: vec![tc, tch, td].into(),
            sequence_number: 2,
        };
        (a, r)
    }

    #[test]
    fn remaining_is_suffix() {
        let (a, r) = record();
        assert_eq!(r.remaining().len(), 1);
        assert_eq!(a.name(r.remaining()[0]), Some("TD"));
    }

    #[test]
    fn remaining_is_empty_at_end() {
        let (_, mut r) = record();
        r.sequence_number = 3;
        assert!(r.remaining().is_empty());
        r.sequence_number = 99; // clamped, no panic
        assert!(r.remaining().is_empty());
    }

    #[test]
    fn render_matches_fig4_shape() {
        let (a, r) = record();
        let s = r.render(&a);
        assert_eq!(s, "CP1 = (await:TCH, T3:ready, TC->TCH->TD, 2, TD)");
    }

    #[test]
    fn render_names_non_zero_slave_cores() {
        let (a, mut r) = record();
        r.slave_core = CoreId::Slave(2);
        let s = r.render(&a);
        assert_eq!(s, "CP1 = (await:TCH, DSP2:T3:ready, TC->TCH->TD, 2, TD)");
    }

    #[test]
    fn render_unbound_slave() {
        let (a, mut r) = record();
        r.slave_task = None;
        r.slave_state = None;
        r.sequence_number = 0;
        let s = r.render(&a);
        assert!(s.contains("-,"), "{s}");
        assert!(s.contains("TC->TCH->TD"), "{s}");
    }

    #[test]
    fn master_state_display() {
        assert_eq!(MasterState::Idle.to_string(), "idle");
        assert_eq!(
            MasterState::Issuing(Service::Create).to_string(),
            "issue:TC"
        );
        assert_eq!(MasterState::Finished.to_string(), "finished");
    }
}
