//! The [`Scenario`] abstraction: a reusable, thread-safe description of
//! *what* to test.
//!
//! [`AdaptiveTest::run`](crate::AdaptiveTest::run) historically took a
//! one-shot `FnOnce` setup closure — enough for a single trial, but a
//! campaign runs *many* trials of the same scenario concurrently, so the
//! setup must be repeatable (`&self`) and shareable across worker threads
//! (`Send + Sync`). A [`Scenario`] packages the three things every tester
//! needs:
//!
//! 1. a **name** for reports,
//! 2. a **base configuration** (the Algorithm 1 inputs; the seed field is
//!    overridden per trial), and
//! 3. a **setup** that prepares a fresh slave system — registering task
//!    programs, creating semaphores/mutexes, seeding shared variables —
//!    and returns the programs `task_create` commands should start.
//!
//! Every tester in the workspace accepts a scenario: the adaptive tester
//! ([`AdaptiveTest::run_scenario`](crate::AdaptiveTest::run_scenario)),
//! the campaign engine, and the ConTest-style/CHESS-style baselines.

use ptest_master::DualCoreSystem;
use ptest_pcore::ProgramId;

use crate::adaptive::AdaptiveTestConfig;

/// A named, repeatable, thread-safe test scenario.
///
/// `setup` is called once per trial on a fresh [`DualCoreSystem`]; it
/// must be deterministic (same system state in, same programs out) for
/// campaign results to be reproducible.
pub trait Scenario: Send + Sync {
    /// Scenario name, echoed into campaign reports.
    fn name(&self) -> &str;

    /// The adaptive-test configuration this scenario is designed for.
    /// The `seed` field is a default; testers override it per trial.
    fn base_config(&self) -> AdaptiveTestConfig;

    /// Prepares a fresh slave system and returns the programs that
    /// `task_create` commands should start (one per pattern, cycled if
    /// shorter).
    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId>;
}

/// Adapter turning a configuration plus a `Fn` closure into a
/// [`Scenario`] — the ergonomic path for ad-hoc campaigns.
///
/// ```
/// use ptest_core::{AdaptiveTestConfig, FnScenario, Scenario};
/// use ptest_pcore::{Op, Program};
///
/// let scenario = FnScenario::new(
///     "compute-worker",
///     AdaptiveTestConfig::default(),
///     |sys| {
///         vec![sys.kernel_mut().register_program(
///             Program::new(vec![Op::Compute(20), Op::Exit]).expect("valid"),
///         )]
///     },
/// );
/// assert_eq!(scenario.name(), "compute-worker");
/// ```
pub struct FnScenario<F> {
    name: String,
    config: AdaptiveTestConfig,
    setup: F,
}

impl<F> FnScenario<F>
where
    F: Fn(&mut DualCoreSystem) -> Vec<ProgramId> + Send + Sync,
{
    /// Wraps a name, configuration and setup closure.
    pub fn new(name: impl Into<String>, config: AdaptiveTestConfig, setup: F) -> FnScenario<F> {
        FnScenario {
            name: name.into(),
            config,
            setup,
        }
    }
}

impl<F> Scenario for FnScenario<F>
where
    F: Fn(&mut DualCoreSystem) -> Vec<ProgramId> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        self.config.clone()
    }

    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        (self.setup)(sys)
    }
}

impl<F> std::fmt::Debug for FnScenario<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnScenario")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Combinator overriding a scenario's base configuration while keeping
/// its name and slave setup — how experiments sweep merge policies,
/// distributions or budgets over one fault scenario.
///
/// ```
/// use ptest_core::{Configured, MergeOp, Scenario};
/// # use ptest_core::{AdaptiveTestConfig, FnScenario};
/// # let inner = FnScenario::new("w", AdaptiveTestConfig::default(), |_sys| vec![]);
/// let mut cfg = inner.base_config();
/// cfg.op = MergeOp::Sequential;
/// let sequential = Configured::new(inner, cfg);
/// assert!(matches!(sequential.base_config().op, MergeOp::Sequential));
/// ```
#[derive(Debug, Clone)]
pub struct Configured<S> {
    inner: S,
    config: AdaptiveTestConfig,
}

impl<S: Scenario> Configured<S> {
    /// Wraps `inner` with a replacement configuration.
    pub fn new(inner: S, config: AdaptiveTestConfig) -> Configured<S> {
        Configured { inner, config }
    }

    /// Wraps `inner`, deriving the replacement by mutating its own base
    /// configuration.
    pub fn adjust(inner: S, f: impl FnOnce(&mut AdaptiveTestConfig)) -> Configured<S> {
        let mut config = inner.base_config();
        f(&mut config);
        Configured { inner, config }
    }
}

impl<S: Scenario> Scenario for Configured<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        self.config.clone()
    }

    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        self.inner.setup(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{Op, Program};

    fn compute_scenario() -> impl Scenario {
        FnScenario::new("compute", AdaptiveTestConfig::default(), |sys| {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(10), Op::Exit]).unwrap())]
        })
    }

    #[test]
    fn scenarios_are_object_safe_and_thread_safe() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Scenario>();
        let s = compute_scenario();
        let dyn_ref: &dyn Scenario = &s;
        assert_eq!(dyn_ref.name(), "compute");
        assert_eq!(dyn_ref.base_config().n, 4);
    }

    #[test]
    fn setup_is_repeatable() {
        let s = compute_scenario();
        let mut a = ptest_master::DualCoreSystem::new(s.base_config().system);
        let mut b = ptest_master::DualCoreSystem::new(s.base_config().system);
        assert_eq!(s.setup(&mut a), s.setup(&mut b));
    }
}
