//! The single-trial execution engine underlying [`AdaptiveTest`] and the
//! campaign layer.
//!
//! Compiling the regular expression and attaching the probability
//! distribution (`ConvertToNFA` + `ConstructPFA` of Algorithm 2) is the
//! expensive, trial-independent part of a run. A [`TrialEngine`] performs
//! it **once**; [`TrialEngine::run_trial`] then executes arbitrarily many
//! seeded trials against the compiled PFA — which is what lets a campaign
//! fan hundreds of trials across worker threads without recompiling per
//! trial. [`AdaptiveTest::run`] is a thin wrapper: compile, run one
//! trial.
//!
//! [`AdaptiveTest`]: crate::AdaptiveTest
//! [`AdaptiveTest::run`]: crate::AdaptiveTest::run

use ptest_automata::{GenerateOptions, Regex};
use ptest_master::{
    DualCoreSystem, IdleHorizon, MemoryModel, MemoryModelSpec, Scheduler, SnapshotCache,
};
use ptest_pcore::ProgramId;
use ptest_soc::TraceEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adaptive::{AdaptiveTestConfig, AdaptiveTestError, TestReport};
use crate::committer::{Committer, CommitterConfig, CommitterStatus};
use crate::coverage;
use crate::detector::{Bug, BugDetector, BugKind};
use crate::generator::PatternGenerator;
use crate::merger::PatternMerger;
use crate::pattern::TestPattern;
use crate::scenario::Scenario;

/// The full event timeline of one trial, captured when a caller requests
/// tracing via [`TrialOverrides::capture_trace`]: every kernel's trace
/// ring plus the master system's, as left at end of trial. Capturing
/// also enables the kernels' access tracing
/// ([`trace_accesses`](ptest_pcore::KernelConfig::trace_accesses)), so
/// shared-variable reads/writes, fences and semaphore hand-offs appear in
/// the timeline — the raw material of a root-cause interleaving report.
#[derive(Debug, Clone, Default)]
pub struct TrialTrace {
    /// Per-slave kernel trace events, in per-kernel chronological order.
    pub kernels: Vec<Vec<TraceEvent>>,
    /// Master-side system trace events (commands, threads, sem links).
    pub master: Vec<TraceEvent>,
}

/// Per-trial overrides of a compiled [`TrialEngine`]'s configuration —
/// the one flexible entry point behind every `run_scenario_trial_*`
/// convenience wrapper. Each field defaults to "no override".
#[derive(Default)]
pub struct TrialOverrides<'a> {
    /// Replaces the compiled [`ScheduleSpec`](ptest_master::ScheduleSpec)
    /// for this trial (campaign budget rotation, schedule shrink).
    pub schedule: Option<ptest_master::ScheduleSpec>,
    /// Replaces the compiled [`MemoryModelSpec`] for this trial.
    pub memory: Option<MemoryModelSpec>,
    /// Replaces the compiled
    /// [`PreemptionSpec`](ptest_master::PreemptionSpec) for this trial
    /// (campaign preemption rotation, interrupt-mask shrink).
    pub preemption: Option<ptest_master::PreemptionSpec>,
    /// Replaces the trial's interrupt/preemption seed (campaign irq
    /// stream, quadruple replay). `None` falls back to the compiled
    /// configuration's [`irq_seed`](crate::AdaptiveTestConfig::irq_seed)
    /// override, then to derivation from the pattern seed.
    pub irq_seed: Option<u64>,
    /// Replaces the generated patterns: the trial skips PFA generation
    /// and runs exactly these patterns through the same merge → commit →
    /// detect path. The shrink loop of reproducer minimization feeds
    /// candidate pattern sets through here, so every candidate is a full
    /// deterministic trial.
    pub patterns: Option<&'a [TestPattern]>,
    /// Captures the trial's full event timeline (and enables kernel
    /// access tracing for this trial) into the given buffer.
    pub capture_trace: Option<&'a mut TrialTrace>,
}

/// A compiled adaptive-test configuration: the PFA pipeline built once,
/// reusable across any number of seeded trials (and across threads — the
/// engine is `Send + Sync`).
#[derive(Debug, Clone)]
pub struct TrialEngine {
    config: AdaptiveTestConfig,
    generator: PatternGenerator,
    fast_forward: bool,
}

/// Reusable working memory for [`TrialEngine::run_trial_in`]. A campaign
/// worker keeps one of these for its whole lifetime, so the buffers the
/// trial hot loop churns through — the epoch-keyed per-kernel snapshot
/// cache with its task lists and wait edges — reach a steady state after
/// the first trial and stop allocating. The cache's epoch bookkeeping is
/// reset at the start of every trial, so scratch reuse never leaks state
/// between trials.
#[derive(Debug, Default)]
pub struct TrialScratch {
    cache: SnapshotCache,
}

impl TrialScratch {
    /// An empty scratch; buffers grow to steady state on first use.
    #[must_use]
    pub fn new() -> TrialScratch {
        TrialScratch::default()
    }
}

/// Derives the default schedule seed of a trial from its pattern seed.
/// Re-exported from [`ptest_soc::seed`] under this historical path.
/// Used when the configuration carries no explicit
/// [`schedule_seed`](crate::AdaptiveTestConfig::schedule_seed): a plain
/// `(config, seed)` run remains a one-seed reproduction story, while the
/// derived schedule stream stays decorrelated from the pattern stream.
pub use ptest_soc::seed::derived_schedule_seed;

/// Derives the default memory seed of a trial from its pattern seed, on
/// a third stream decorrelated from both the pattern and the schedule
/// streams. Re-exported from [`ptest_soc::seed`] under this historical
/// path. Used when the configuration carries no explicit
/// [`memory_seed`](crate::AdaptiveTestConfig::memory_seed): under the
/// default [`MemoryModelSpec::SeqCst`] the seed is recorded but has no
/// behavioural effect.
pub use ptest_soc::seed::derived_memory_seed;

/// Derives the default interrupt/preemption seed of a trial from its
/// pattern seed — the fourth stream of the replay quadruple.
/// Re-exported from [`ptest_soc::seed`]. Used when the configuration
/// carries no explicit
/// [`irq_seed`](crate::AdaptiveTestConfig::irq_seed): under the default
/// inert [`PreemptionSpec`](ptest_master::PreemptionSpec) the seed is
/// recorded but has no behavioural effect.
pub use ptest_soc::seed::derived_irq_seed;

impl TrialEngine {
    /// Compiles `config`'s regular expression and probability
    /// distribution into a reusable engine.
    ///
    /// # Errors
    ///
    /// [`AdaptiveTestError`] if the regex or distribution is invalid.
    pub fn new(config: AdaptiveTestConfig) -> Result<TrialEngine, AdaptiveTestError> {
        let regex = Regex::parse(&config.regex_source).map_err(AdaptiveTestError::Regex)?;
        let generator = PatternGenerator::new(regex, &config.pd).map_err(AdaptiveTestError::Pfa)?;
        let fast_forward = std::env::var_os("PTEST_NO_FAST_FORWARD").is_none();
        Ok(TrialEngine {
            config,
            generator,
            fast_forward,
        })
    }

    /// Enables or disables idle-cycle fast-forward for trials run by this
    /// engine. Fast-forward is a pure latency optimisation — reports are
    /// byte-identical either way (the equivalence suite pins this) — so
    /// the switch exists for validation and debugging only. It can also
    /// be flipped off process-wide by setting the `PTEST_NO_FAST_FORWARD`
    /// environment variable, read once per [`TrialEngine::new`].
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Whether idle-cycle fast-forward is active for this engine.
    #[must_use]
    pub fn fast_forward_enabled(&self) -> bool {
        self.fast_forward
    }

    /// The compiled pattern generator (PFA + legality oracle).
    #[must_use]
    pub fn generator(&self) -> &PatternGenerator {
        &self.generator
    }

    /// The configuration this engine was compiled from.
    #[must_use]
    pub fn config(&self) -> &AdaptiveTestConfig {
        &self.config
    }

    /// Runs one seeded trial: generate, merge, fork the detector, commit
    /// (Algorithm 1 lines 1–10). `seed` overrides the configured seed and
    /// is echoed into the report, so every campaign trial is individually
    /// reproducible via [`AdaptiveTest::reproduce`].
    ///
    /// [`AdaptiveTest::reproduce`]: crate::AdaptiveTest::reproduce
    ///
    /// # Errors
    ///
    /// [`AdaptiveTestError::Committer`] if the committer rejects the
    /// configuration (no programs, too many patterns, …).
    pub fn run_trial(
        &self,
        seed: u64,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial_in(seed, setup, &mut TrialScratch::new())
    }

    /// [`TrialEngine::run_trial`] with caller-owned working memory: the
    /// campaign pool hands each worker one [`TrialScratch`] for its whole
    /// lifetime, so back-to-back trials reuse the detector's snapshot
    /// buffers instead of re-growing them per trial. Results are
    /// identical to [`TrialEngine::run_trial`] — scratch reuse never
    /// leaks state between trials.
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_trial_in(
        &self,
        seed: u64,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        let schedule_seed = self
            .config
            .schedule_seed
            .unwrap_or_else(|| derived_schedule_seed(seed));
        self.run_trial_with_schedule(seed, schedule_seed, setup, scratch)
    }

    /// [`TrialEngine::run_trial_in`] at an explicit `(schedule seed,
    /// memory seed)` pair — the fully scheduled entry point, where all
    /// three exploration seeds are chosen by the caller. With the default
    /// [`MemoryModelSpec::SeqCst`] the memory seed is recorded but has no
    /// behavioural effect.
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_trial_explored(
        &self,
        seed: u64,
        schedule_seed: u64,
        memory_seed: u64,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial_inner(
            seed,
            schedule_seed,
            memory_seed,
            TrialOverrides::default(),
            setup,
            scratch,
        )
    }

    /// [`TrialEngine::run_trial_in`] at an explicit schedule seed — the
    /// campaign entry point, where pattern seeds and schedule seeds are
    /// derived independently from the master seed so the campaign
    /// explores (pattern × schedule) space rather than a diagonal of it.
    /// With [`ScheduleSpec::LockStep`](ptest_master::ScheduleSpec) the
    /// schedule seed is recorded but has no behavioural effect.
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_trial_with_schedule(
        &self,
        seed: u64,
        schedule_seed: u64,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        let memory_seed = self
            .config
            .memory_seed
            .unwrap_or_else(|| derived_memory_seed(seed));
        self.run_trial_inner(
            seed,
            schedule_seed,
            memory_seed,
            TrialOverrides::default(),
            setup,
            scratch,
        )
    }

    /// The shared trial core. `overrides` replaces the compiled
    /// configuration's [`ScheduleSpec`](ptest_master::ScheduleSpec),
    /// [`MemoryModelSpec`] or generated patterns for this trial only —
    /// the campaign's budget rotation varies either spec axis per trial
    /// without recompiling the PFA pipeline, and the minimization shrink
    /// loop replaces patterns while keeping everything else replayable.
    fn run_trial_inner(
        &self,
        seed: u64,
        schedule_seed: u64,
        memory_seed: u64,
        overrides: TrialOverrides<'_>,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        let TrialOverrides {
            schedule,
            memory,
            preemption,
            irq_seed,
            patterns: pattern_override,
            capture_trace,
        } = overrides;
        let irq_seed = irq_seed
            .or(self.config.irq_seed)
            .unwrap_or_else(|| derived_irq_seed(seed));
        let mut cfg = AdaptiveTestConfig {
            seed,
            schedule_seed: Some(schedule_seed),
            schedule: schedule.unwrap_or(self.config.schedule),
            memory_seed: Some(memory_seed),
            memory: memory.unwrap_or(self.config.memory),
            irq_seed: Some(irq_seed),
            preemption: preemption.unwrap_or(self.config.preemption),
            ..self.config.clone()
        };
        if capture_trace.is_some() {
            cfg.system.kernel.trace_accesses = true;
        }

        // --- Algorithm 1, lines 1-3: generate T[1..n].
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let opts = if cfg.cyclic_generation {
            GenerateOptions::cyclic(cfg.s)
        } else {
            GenerateOptions::sized(cfg.s)
        };
        let patterns = match pattern_override {
            Some(explicit) => explicit.to_vec(),
            None => self.generator.generate_batch(&mut rng, cfg.n, opts),
        };

        // --- Line 4: merge.
        let merged = PatternMerger::new().merge(&patterns, cfg.op);

        // --- System + committer + detector (lines 5-10).
        let mut sys = DualCoreSystem::new(cfg.system.clone());
        let programs = setup(&mut sys);
        // After setup, so scenarios can install their ISR handlers
        // first; the inert default installs nothing (the golden-fixture
        // fast path).
        sys.install_preemption(&cfg.preemption, irq_seed);
        let mut committer = Committer::new(
            merged,
            self.generator.regex().alphabet(),
            CommitterConfig {
                response_timeout: cfg.response_timeout,
                programs,
                stack_bytes: cfg.stack_bytes,
                priority_band: 15,
                inter_command_gap: cfg.inter_command_gap,
            },
        )
        .map_err(AdaptiveTestError::Committer)?;
        let mut detector = BugDetector::new(cfg.detector);
        // Lock-step compiles to no scheduler at all: the trial drives the
        // plain `step()` path, bit-identical to the pre-scheduler engine
        // (the golden fixtures pin this).
        let mut scheduler: Option<Box<dyn Scheduler>> =
            cfg.schedule.scheduler(cfg.system.slaves, schedule_seed);
        // Sequential consistency compiles to no model at all: the trial
        // drives the `None` arms below, bit-identical to the pre-memory
        // engine (the golden fixtures pin this).
        let mut memory_model: Option<Box<dyn MemoryModel>> = cfg.memory.model(memory_seed);

        scratch.cache.reset();
        let mut bugs: Vec<Bug> = Vec::new();
        let mut cycles = 0u64;
        let mut done_at: Option<u64> = None;
        while cycles < cfg.max_cycles {
            // --- Idle-cycle fast-forward. When every component can name
            // the first future cycle at which it could do observable work
            // (sleeper wake-ups, a pending store delivery, the
            // committer's next issue/timeout/completion cycle), and that
            // cycle — capped by the next detector observe point and the
            // drain/end-of-trial deadlines — is more than one step away,
            // the idle gap is advanced arithmetically: clocks jump, idle
            // tick counters batch-update, and the schedule stream is
            // consumed in closed form. Cycle `target` itself then
            // executes normally, so every observable transition and every
            // detector observation lands on exactly the cycle it would
            // under cycle-by-cycle stepping (the equivalence suite and
            // the golden fixtures pin the reports byte-identical).
            if self.fast_forward {
                let sys_horizon = sys.quiescent_horizon();
                let model_horizon = memory_model
                    .as_deref()
                    .map_or(IdleHorizon::Unbounded, MemoryModel::idle_horizon);
                if sys_horizon != IdleHorizon::Unknown && model_horizon != IdleHorizon::Unknown {
                    let mut target = (cycles / cfg.check_interval + 1) * cfg.check_interval;
                    if let IdleHorizon::Until(h) = sys_horizon {
                        target = target.min(h);
                    }
                    if let IdleHorizon::Until(h) = model_horizon {
                        target = target.min(h);
                    }
                    if let Some(event) = committer.next_event_cycle(sys.now()) {
                        target = target.min(event);
                    }
                    if let Some(done) = done_at {
                        target = target.min(done + cfg.drain_cycles);
                    }
                    target = target.min(cfg.max_cycles);
                    if target > cycles + 1 {
                        let skip = target - cycles - 1;
                        match scheduler.as_deref_mut() {
                            None => sys.fast_forward_idle(skip),
                            Some(sched) => sys.fast_forward_idle_with(skip, sched),
                        }
                        cycles += skip;
                    }
                }
            }
            cycles += 1;
            // One entry point for every axis combination: `None` on an
            // axis selects that axis's historical fast path inside the
            // system, so unexplored trials stay byte-identical.
            sys.step_explored(scheduler.as_deref_mut(), memory_model.as_deref_mut());
            let status = committer.step(&mut sys);
            let committer_done = status != CommitterStatus::Running;
            if committer_done && done_at.is_none() {
                done_at = Some(cycles);
            }
            if cycles.is_multiple_of(cfg.check_interval) {
                bugs.extend(detector.observe_cached(
                    &sys,
                    Some(&committer),
                    committer_done,
                    &mut scratch.cache,
                ));
            }
            // Stop once a crash-class bug is in hand, or after the drain
            // period following completion.
            let fatal = bugs.iter().any(|b| {
                matches!(
                    b.kind,
                    BugKind::SlaveCrash { .. }
                        | BugKind::CommandTimeout { .. }
                        | BugKind::Deadlock { .. }
                        | BugKind::CrossCoreDeadlock { .. }
                        | BugKind::Livelock { .. }
                )
            });
            if fatal {
                break;
            }
            if let Some(done) = done_at {
                // Slave 0's quiescence, exactly as `snapshot().live_tasks()`
                // historically measured it, but without building a snapshot
                // every drain cycle.
                let quiescent = sys.kernel_of(0).live_task_count() == 0;
                if quiescent || cycles - done >= cfg.drain_cycles {
                    // Final sweep before ending.
                    bugs.extend(detector.observe_cached(
                        &sys,
                        Some(&committer),
                        true,
                        &mut scratch.cache,
                    ));
                    break;
                }
            }
        }

        if let Some(trace) = capture_trace {
            trace.kernels = (0..cfg.system.slaves)
                .map(|i| sys.kernel_of(i).trace().iter().cloned().collect())
                .collect();
            trace.master = sys.trace().iter().cloned().collect();
        }

        let coverage = coverage::measure(
            &patterns,
            self.generator.dfa(),
            self.generator.regex().alphabet(),
        );
        let commands_issued = committer.commands_issued();
        let error_replies = committer.error_replies();
        let committer_status = committer.status();
        let (merged, exec_records) = committer.into_parts();
        Ok(TestReport {
            bugs,
            commands_issued,
            error_replies,
            cycles,
            committer_status,
            completed: committer_status == CommitterStatus::Done,
            coverage,
            exec_records,
            patterns,
            merged,
            schedule_seed,
            memory_seed,
            irq_seed,
            config: cfg,
        })
    }

    /// Runs one seeded trial of a [`Scenario`].
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_scenario_trial(
        &self,
        scenario: &dyn Scenario,
        seed: u64,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial(seed, |sys| scenario.setup(sys))
    }

    /// Runs one seeded trial of a [`Scenario`] with caller-owned working
    /// memory (see [`TrialEngine::run_trial_in`]).
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_scenario_trial_in(
        &self,
        scenario: &dyn Scenario,
        seed: u64,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial_in(seed, |sys| scenario.setup(sys), scratch)
    }

    /// Runs one trial of a [`Scenario`] at an explicit `(pattern seed,
    /// schedule seed)` pair (see
    /// [`TrialEngine::run_trial_with_schedule`]).
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_scenario_trial_scheduled(
        &self,
        scenario: &dyn Scenario,
        seed: u64,
        schedule_seed: u64,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial_with_schedule(seed, schedule_seed, |sys| scenario.setup(sys), scratch)
    }

    /// [`TrialEngine::run_scenario_trial_scheduled`] under an explicit
    /// [`ScheduleSpec`](ptest_master::ScheduleSpec), overriding the
    /// compiled configuration's spec for this trial only — how a
    /// campaign rotates schedule budgets across the trials of one round
    /// while reusing the round's compiled PFA.
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_scenario_trial_scheduled_as(
        &self,
        scenario: &dyn Scenario,
        seed: u64,
        schedule_seed: u64,
        schedule: ptest_master::ScheduleSpec,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        let memory_seed = self
            .config
            .memory_seed
            .unwrap_or_else(|| derived_memory_seed(seed));
        self.run_trial_inner(
            seed,
            schedule_seed,
            memory_seed,
            TrialOverrides {
                schedule: Some(schedule),
                ..TrialOverrides::default()
            },
            |sys| scenario.setup(sys),
            scratch,
        )
    }

    /// Runs one trial of a [`Scenario`] at an explicit `(pattern seed,
    /// schedule seed, memory seed)` triple (see
    /// [`TrialEngine::run_trial_explored`]) — the replay entry point for
    /// trials recorded by a memory-model-rotating campaign.
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_scenario_trial_explored(
        &self,
        scenario: &dyn Scenario,
        seed: u64,
        schedule_seed: u64,
        memory_seed: u64,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial_explored(
            seed,
            schedule_seed,
            memory_seed,
            |sys| scenario.setup(sys),
            scratch,
        )
    }

    /// [`TrialEngine::run_scenario_trial_explored`] under explicit
    /// [`ScheduleSpec`](ptest_master::ScheduleSpec) and
    /// [`MemoryModelSpec`] overrides, replacing the compiled
    /// configuration's specs for this trial only — how a campaign rotates
    /// schedule and memory-model budgets across the trials of one round
    /// while reusing the round's compiled PFA.
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_scenario_trial_explored_as(
        &self,
        scenario: &dyn Scenario,
        seed: u64,
        schedule_seed: u64,
        memory_seed: u64,
        schedule: ptest_master::ScheduleSpec,
        memory: MemoryModelSpec,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial_inner(
            seed,
            schedule_seed,
            memory_seed,
            TrialOverrides {
                schedule: Some(schedule),
                memory: Some(memory),
                ..TrialOverrides::default()
            },
            |sys| scenario.setup(sys),
            scratch,
        )
    }

    /// The fully general scenario-trial entry point: runs one trial of a
    /// [`Scenario`] at an explicit `(pattern seed, schedule seed, memory
    /// seed)` triple under arbitrary [`TrialOverrides`] — explicit
    /// schedule/memory specs, an explicit pattern set (the minimization
    /// shrink loop's candidate trials), and optional full-trace capture
    /// (the root-cause replay). Every other `run_scenario_trial_*` method
    /// is a special case of this one.
    ///
    /// # Errors
    ///
    /// As for [`TrialEngine::run_trial`].
    pub fn run_scenario_trial_overridden(
        &self,
        scenario: &dyn Scenario,
        seed: u64,
        schedule_seed: u64,
        memory_seed: u64,
        overrides: TrialOverrides<'_>,
        scratch: &mut TrialScratch,
    ) -> Result<TestReport, AdaptiveTestError> {
        self.run_trial_inner(
            seed,
            schedule_seed,
            memory_seed,
            overrides,
            |sys| scenario.setup(sys),
            scratch,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::AdaptiveTest;
    use ptest_pcore::{Op, Program};

    fn quick_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        vec![sys
            .kernel_mut()
            .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrialEngine>();
    }

    #[test]
    fn engine_trial_matches_adaptive_test_run() {
        let cfg = AdaptiveTestConfig {
            n: 3,
            s: 6,
            seed: 42,
            ..AdaptiveTestConfig::default()
        };
        let via_engine = TrialEngine::new(cfg.clone())
            .unwrap()
            .run_trial(42, quick_setup)
            .unwrap();
        let via_run = AdaptiveTest::run(cfg, quick_setup).unwrap();
        assert_eq!(via_engine.patterns, via_run.patterns);
        assert_eq!(via_engine.commands_issued, via_run.commands_issued);
        assert_eq!(via_engine.cycles, via_run.cycles);
        assert_eq!(via_engine.bugs.len(), via_run.bugs.len());
    }

    #[test]
    fn lock_step_records_but_ignores_the_schedule_seed() {
        let engine = TrialEngine::new(AdaptiveTestConfig {
            n: 2,
            s: 4,
            ..AdaptiveTestConfig::default()
        })
        .unwrap();
        let mut scratch = TrialScratch::new();
        let a = engine
            .run_trial_with_schedule(5, 111, quick_setup, &mut scratch)
            .unwrap();
        let b = engine
            .run_trial_with_schedule(5, 222, quick_setup, &mut scratch)
            .unwrap();
        assert_eq!(a.schedule_seed, 111);
        assert_eq!(a.config.schedule_seed, Some(111));
        assert_eq!(a.cycles, b.cycles, "lock-step ignores the schedule seed");
        assert_eq!(a.patterns, b.patterns);
        // The implicit path derives a stable schedule seed from the trial
        // seed.
        let c = engine.run_trial(5, quick_setup).unwrap();
        assert_eq!(c.schedule_seed, crate::derived_schedule_seed(5));
    }

    #[test]
    fn schedule_seed_pair_replays_byte_identically() {
        use ptest_master::ScheduleSpec;
        let engine = TrialEngine::new(AdaptiveTestConfig {
            n: 2,
            s: 4,
            schedule: ScheduleSpec::random_priority(),
            ..AdaptiveTestConfig::default()
        })
        .unwrap();
        let mut scratch = TrialScratch::new();
        let a = engine
            .run_trial_with_schedule(9, 1234, quick_setup, &mut scratch)
            .unwrap();
        let b = engine
            .run_trial_with_schedule(9, 1234, quick_setup, &mut scratch)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.commands_issued, b.commands_issued);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.bugs.len(), b.bugs.len());
        assert_eq!(
            format!("{:?}", a.exec_records),
            format!("{:?}", b.exec_records),
            "the full execution trace replays from the seed pair"
        );
    }

    #[test]
    fn seq_cst_records_but_ignores_the_memory_seed() {
        let engine = TrialEngine::new(AdaptiveTestConfig {
            n: 2,
            s: 4,
            ..AdaptiveTestConfig::default()
        })
        .unwrap();
        let mut scratch = TrialScratch::new();
        let a = engine
            .run_trial_explored(5, 111, 333, quick_setup, &mut scratch)
            .unwrap();
        let b = engine
            .run_trial_explored(5, 111, 444, quick_setup, &mut scratch)
            .unwrap();
        assert_eq!(a.memory_seed, 333);
        assert_eq!(a.config.memory_seed, Some(333));
        assert_eq!(a.cycles, b.cycles, "seq-cst ignores the memory seed");
        assert_eq!(a.patterns, b.patterns);
        // The implicit path derives a stable memory seed from the trial
        // seed, on a stream decorrelated from the schedule stream.
        let c = engine.run_trial(5, quick_setup).unwrap();
        assert_eq!(c.memory_seed, crate::derived_memory_seed(5));
        assert_ne!(
            crate::derived_memory_seed(5),
            crate::derived_schedule_seed(5)
        );
    }

    #[test]
    fn seed_triple_replays_byte_identically_under_a_store_buffer() {
        use ptest_master::{MemoryModelSpec, ScheduleSpec};
        let engine = TrialEngine::new(AdaptiveTestConfig {
            n: 2,
            s: 4,
            schedule: ScheduleSpec::random_priority(),
            memory: MemoryModelSpec::store_buffer(),
            ..AdaptiveTestConfig::default()
        })
        .unwrap();
        let mut scratch = TrialScratch::new();
        let a = engine
            .run_trial_explored(9, 1234, 77, quick_setup, &mut scratch)
            .unwrap();
        let b = engine
            .run_trial_explored(9, 1234, 77, quick_setup, &mut scratch)
            .unwrap();
        assert_eq!(a.memory_seed, 77);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.commands_issued, b.commands_issued);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(a.bugs.len(), b.bugs.len());
        assert_eq!(
            format!("{:?}", a.exec_records),
            format!("{:?}", b.exec_records),
            "the full execution trace replays from the seed triple"
        );
    }

    /// Like [`quick_setup`], but with an ISR handler installed on slave 0
    /// and a sleep in the task body so planned injections have a handler
    /// to run and fast-forward has idle windows to skip.
    fn preemptive_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        use ptest_pcore::VarId;
        let isr_body = Program::new(vec![
            Op::Compute(7),
            Op::WriteVar {
                var: VarId(9),
                value: 1,
            },
            Op::Exit,
        ])
        .unwrap();
        for slave in 0..sys.slave_count() {
            let isr = sys.kernel_of_mut(slave).register_program(isr_body.clone());
            sys.kernel_of_mut(slave).set_isr_program(isr);
        }
        vec![sys.kernel_mut().register_program(
            Program::new(vec![
                Op::Compute(10),
                Op::SleepFor(25),
                Op::Compute(10),
                Op::Exit,
            ])
            .unwrap(),
        )]
    }

    fn preemptive_spec() -> ptest_master::PreemptionSpec {
        use ptest_master::{ClockSkewConfig, InterruptConfig, PreemptionSpec, QuantumConfig};
        PreemptionSpec {
            quantum: Some(QuantumConfig { cycles: 4 }),
            clock_skew: Some(ClockSkewConfig { max_rate: 64 }),
            interrupts: Some(InterruptConfig {
                count: 8,
                horizon: 300,
                ..InterruptConfig::default()
            }),
        }
    }

    #[test]
    fn irq_seed_is_derived_recorded_and_decorrelated() {
        let engine = TrialEngine::new(AdaptiveTestConfig {
            n: 2,
            s: 4,
            ..AdaptiveTestConfig::default()
        })
        .unwrap();
        let a = engine.run_trial(5, quick_setup).unwrap();
        assert_eq!(a.irq_seed, crate::derived_irq_seed(5));
        assert_eq!(a.config.irq_seed, Some(crate::derived_irq_seed(5)));
        // The irq stream is decorrelated from the other derived streams.
        assert_ne!(crate::derived_irq_seed(5), crate::derived_schedule_seed(5));
        assert_ne!(crate::derived_irq_seed(5), crate::derived_memory_seed(5));
    }

    #[test]
    fn seed_quadruple_replays_byte_identically_under_preemption() {
        use ptest_master::ScheduleSpec;
        let engine = TrialEngine::new(AdaptiveTestConfig {
            n: 2,
            s: 4,
            schedule: ScheduleSpec::random_priority(),
            preemption: preemptive_spec(),
            ..AdaptiveTestConfig::default()
        })
        .unwrap();
        let mut scratch = TrialScratch::new();
        let a = engine
            .run_trial_explored(9, 1234, 77, preemptive_setup, &mut scratch)
            .unwrap();
        let b = engine
            .run_trial_explored(9, 1234, 77, preemptive_setup, &mut scratch)
            .unwrap();
        assert_eq!(
            a.irq_seed, b.irq_seed,
            "irq seed derives from the trial seed"
        );
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.commands_issued, b.commands_issued);
        assert_eq!(a.patterns, b.patterns);
        assert_eq!(
            format!("{:?}", a.exec_records),
            format!("{:?}", b.exec_records),
            "the full execution trace replays from the seed quadruple"
        );
        // The spec is live: the captured timeline shows planned
        // injections firing (master-side command records alone can't —
        // service replies are timed by the endpoint, not the task CPU).
        let scenario = crate::FnScenario::new(
            "preemptive-probe",
            AdaptiveTestConfig {
                n: 2,
                s: 4,
                schedule: ScheduleSpec::random_priority(),
                preemption: preemptive_spec(),
                ..AdaptiveTestConfig::default()
            },
            preemptive_setup,
        );
        let mut trace = TrialTrace::default();
        let c = engine
            .run_scenario_trial_overridden(
                &scenario,
                9,
                1234,
                77,
                TrialOverrides {
                    capture_trace: Some(&mut trace),
                    ..TrialOverrides::default()
                },
                &mut scratch,
            )
            .unwrap();
        assert_eq!(c.cycles, a.cycles, "trace capture does not perturb the run");
        let injected = trace
            .master
            .iter()
            .filter(|e| e.kind == "irq-inject")
            .count();
        assert!(injected > 0, "planned injections fire during the trial");
    }

    #[test]
    fn fast_forward_is_invisible_under_preemption() {
        use ptest_master::ScheduleSpec;
        let cfg = AdaptiveTestConfig {
            n: 2,
            s: 4,
            schedule: ScheduleSpec::random_priority(),
            preemption: preemptive_spec(),
            ..AdaptiveTestConfig::default()
        };
        let mut fast = TrialEngine::new(cfg.clone()).unwrap();
        fast.set_fast_forward(true);
        let mut slow = TrialEngine::new(cfg).unwrap();
        slow.set_fast_forward(false);
        let mut scratch = TrialScratch::new();
        let a = fast
            .run_trial_explored(9, 1234, 77, preemptive_setup, &mut scratch)
            .unwrap();
        let b = slow
            .run_trial_explored(9, 1234, 77, preemptive_setup, &mut scratch)
            .unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.commands_issued, b.commands_issued);
        assert_eq!(
            format!("{:?}", a.exec_records),
            format!("{:?}", b.exec_records),
            "idle fast-forward never skips a quantum expiry or an injection"
        );
        assert_eq!(
            format!("{:?}", a.machine_summary()),
            format!("{:?}", b.machine_summary())
        );
    }

    #[test]
    fn one_engine_serves_many_seeds() {
        let engine = TrialEngine::new(AdaptiveTestConfig {
            n: 2,
            s: 4,
            ..AdaptiveTestConfig::default()
        })
        .unwrap();
        let a = engine.run_trial(1, quick_setup).unwrap();
        let b = engine.run_trial(2, quick_setup).unwrap();
        let a2 = engine.run_trial(1, quick_setup).unwrap();
        assert_ne!(a.patterns, b.patterns, "different seeds, different runs");
        assert_eq!(a.patterns, a2.patterns, "same seed, same run");
        assert_eq!(a.config.seed, 1, "trial seed is echoed for reproduction");
    }
}
