//! Coverage accounting for test patterns.
//!
//! The paper notes that "the code coverage analysis is a useful
//! information for stress testing on large software systems" and lists
//! unverified fault coverage as future work. This module provides the
//! measurable proxies available in this reproduction: service coverage,
//! service-pair (adjacency) coverage per task, and PFA transition
//! coverage.

use std::collections::{BTreeMap, BTreeSet};

use ptest_automata::{Alphabet, Dfa, Sym};

use crate::pattern::TestPattern;

/// Coverage achieved by a set of test patterns over a service DFA.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageReport {
    /// How many times each service was used, by name.
    pub service_counts: BTreeMap<String, u64>,
    /// Distinct ordered service pairs `(a, b)` observed adjacently within
    /// a single pattern.
    pub pairs_covered: usize,
    /// Distinct DFA transitions exercised.
    pub transitions_covered: usize,
    /// Total DFA transitions.
    pub transitions_total: usize,
    /// Distinct DFA states visited.
    pub states_covered: usize,
    /// Total DFA states.
    pub states_total: usize,
}

impl CoverageReport {
    /// Transition coverage in `[0, 1]`.
    #[must_use]
    pub fn transition_coverage(&self) -> f64 {
        if self.transitions_total == 0 {
            return 1.0;
        }
        self.transitions_covered as f64 / self.transitions_total as f64
    }

    /// State coverage in `[0, 1]`.
    #[must_use]
    pub fn state_coverage(&self) -> f64 {
        if self.states_total == 0 {
            return 1.0;
        }
        self.states_covered as f64 / self.states_total as f64
    }
}

/// Measures the coverage of `patterns` over the DFA skeleton.
#[must_use]
pub fn measure(patterns: &[TestPattern], dfa: &Dfa, alphabet: &Alphabet) -> CoverageReport {
    let mut service_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut pairs: BTreeSet<(Sym, Sym)> = BTreeSet::new();
    let mut transitions: BTreeSet<(usize, Sym)> = BTreeSet::new();
    let mut states: BTreeSet<usize> = BTreeSet::new();

    for p in patterns {
        let mut q = dfa.start();
        states.insert(q);
        for window in p.symbols().windows(2) {
            pairs.insert((window[0], window[1]));
        }
        for &sym in p.symbols() {
            // Symbols the alphabet cannot name are counted *distinctly*
            // (`?#3`-style buckets, one per unknown symbol id). Folding
            // them all into one `"?"` bucket — as this used to do —
            // silently inflated a single phantom service's count and
            // hid how many distinct unknowns appeared.
            let name = alphabet
                .name(sym)
                .map_or_else(|| format!("?{sym}"), ToOwned::to_owned);
            *service_counts.entry(name).or_insert(0) += 1;
            if let Some(next) = dfa.next(q, sym) {
                transitions.insert((q, sym));
                states.insert(next);
                q = next;
            } else {
                break; // illegal tail: patterns from the generator never hit this
            }
        }
    }
    let transitions_total = dfa.transition_count();
    CoverageReport {
        service_counts,
        pairs_covered: pairs.len(),
        transitions_covered: transitions.len(),
        transitions_total,
        states_covered: states.len(),
        states_total: dfa.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PatternGenerator;
    use ptest_automata::GenerateOptions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_patterns_cover_start_state_only() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let report = measure(&[], g.dfa(), g.regex().alphabet());
        assert_eq!(report.transitions_covered, 0);
        assert_eq!(report.states_covered, 0);
        assert!(report.service_counts.is_empty());
    }

    #[test]
    fn single_lifecycle_covers_some_transitions() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let a = g.regex().alphabet();
        let p = TestPattern::new(vec![a.sym("TC").unwrap(), a.sym("TD").unwrap()]);
        let report = measure(&[p], g.dfa(), a);
        assert_eq!(report.transitions_covered, 2);
        assert_eq!(report.service_counts["TC"], 1);
        assert_eq!(report.service_counts["TD"], 1);
        assert!(report.transition_coverage() < 1.0);
        assert_eq!(report.pairs_covered, 1);
    }

    #[test]
    fn many_patterns_reach_full_transition_coverage() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let patterns = g.generate_batch(&mut rng, 200, GenerateOptions::sized(16));
        let report = measure(&patterns, g.dfa(), g.regex().alphabet());
        assert!(
            (report.transition_coverage() - 1.0).abs() < f64::EPSILON,
            "200 sizable patterns should exercise all {} transitions, got {}",
            report.transitions_total,
            report.transitions_covered
        );
        assert!((report.state_coverage() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn unknown_symbols_are_counted_distinctly_not_aliased() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let a = g.regex().alphabet();
        let known = a.sym("TC").unwrap();
        // Two patterns, each hitting a different symbol outside the
        // 6-service alphabet: the unknowns must land in two distinct
        // `?`-buckets, not merge into a single inflated one. (The DFA
        // walk stops at the first illegal symbol of each pattern, so
        // each contributes exactly one unknown.)
        let p1 = TestPattern::new(vec![known, Sym(900)]);
        let p2 = TestPattern::new(vec![known, Sym(901)]);
        let report = measure(&[p1, p2], g.dfa(), a);
        assert_eq!(report.service_counts["TC"], 2);
        assert_eq!(report.service_counts["?#900"], 1);
        assert_eq!(report.service_counts["?#901"], 1);
        assert!(
            !report.service_counts.contains_key("?"),
            "no aggregate alias bucket: {:?}",
            report.service_counts
        );
    }

    #[test]
    fn coverage_is_monotone_in_patterns() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let patterns = g.generate_batch(&mut rng, 50, GenerateOptions::sized(8));
        let small = measure(&patterns[..5], g.dfa(), g.regex().alphabet());
        let large = measure(&patterns, g.dfa(), g.regex().alphabet());
        assert!(large.transitions_covered >= small.transitions_covered);
        assert!(large.pairs_covered >= small.pairs_covered);
    }
}
