//! # ptest-core — the pTest adaptive testing tool
//!
//! Reproduction of *pTest: An Adaptive Testing Tool for Concurrent
//! Software on Embedded Multicore Processors* (Chang, Hsieh, Lee — DATE
//! 2009). pTest stress-tests a slave runtime system from the master core
//! of an embedded multicore SoC and detects synchronization anomalies of
//! concurrent master-slave programs.
//!
//! The three key components of the paper's §II-B, plus the surrounding
//! machinery:
//!
//! * [`PatternGenerator`] — builds the PFA from a regular expression and
//!   probability distribution, and walks it to produce test patterns
//!   (Algorithm 2).
//! * [`PatternMerger`] — interleaves `n` patterns into one under a
//!   bug-class-targeting [`MergeOp`] (the `op` of Algorithm 1).
//! * [`Committer`] — issues the merged pattern as remote commands over
//!   the bridge, awaiting each response so the slave observes exactly
//!   the merged order.
//! * [`BugDetector`] — watches for crashes, command timeouts, deadlock
//!   (wait-for-graph cycles), starvation and livelock; dumps
//!   Definition-2 [`StateRecord`]s and trace tails into [`Bug`] reports.
//! * [`AdaptiveTest`] — Algorithm 1 end to end, returning a
//!   [`TestReport`] that can be [reproduced](AdaptiveTest::reproduce)
//!   bit-for-bit from its embedded seed and configuration.
//!
//! ## Quick start
//!
//! ```
//! use ptest_core::{AdaptiveTest, AdaptiveTestConfig};
//! use ptest_pcore::{Op, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = AdaptiveTest::run(AdaptiveTestConfig::default(), |sys| {
//!     vec![sys.kernel_mut().register_program(
//!         Program::new(vec![Op::Compute(20), Op::Exit]).expect("valid program"),
//!     )]
//! })?;
//! assert!(report.completed);
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod committer;
pub mod coverage;
mod detector;
mod generator;
mod merger;
mod minimize;
mod pattern;
mod record;
mod report;
mod scenario;
mod trial;

pub use adaptive::{AdaptiveTest, AdaptiveTestConfig, AdaptiveTestError, TestReport};
pub use committer::{Committer, CommitterConfig, CommitterError, CommitterStatus, ExecRecord};
pub use coverage::CoverageReport;
pub use detector::{Bug, BugDetector, BugKind, DetectorConfig};
pub use generator::PatternGenerator;
pub use merger::{MergeOp, PatternMerger};
pub use minimize::{
    minimize_scenario_trial, minimize_trial, replay_minimized, InterleavingEvent, MinimizeConfig,
    MinimizeError, MinimizedMemory, MinimizedRepro, MinimizedSchedule, RootCauseReport,
};
pub use pattern::{MergedPattern, MergedStep, TestPattern};
pub use record::{MasterState, StateRecord};
pub use report::{BugSummary, ReportSummary};
pub use scenario::{Configured, FnScenario, Scenario};
pub use trial::{
    derived_irq_seed, derived_memory_seed, derived_schedule_seed, TrialEngine, TrialOverrides,
    TrialScratch, TrialTrace,
};

// Schedule and memory-model exploration vocabulary, re-exported so
// configurations can be built from this crate alone.
pub use ptest_master::{
    ClockSkewConfig, InterruptConfig, MemoryModelSpec, PreemptionSpec, QuantumConfig,
    RandomPriorityConfig, ScheduleSpec, StoreBufferConfig,
};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::PatternGenerator>();
        assert_send_sync::<super::Committer>();
        assert_send_sync::<super::BugDetector>();
        assert_send_sync::<super::TestReport>();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ptest_automata::{GenerateOptions, Sym};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn arb_patterns() -> impl Strategy<Value = Vec<TestPattern>> {
        proptest::collection::vec(
            proptest::collection::vec(0u16..6, 0..12)
                .prop_map(|v| TestPattern::new(v.into_iter().map(Sym).collect())),
            1..6,
        )
    }

    proptest! {
        /// Every merge policy preserves per-pattern order and loses no
        /// steps — the merger is a scheduler, not a rewriter.
        #[test]
        fn merge_preserves_order(patterns in arb_patterns(), seed in 0u64..100, chunk in 1usize..4, overlap in 0usize..4) {
            let merger = PatternMerger::new();
            for op in [
                MergeOp::Sequential,
                MergeOp::RoundRobin { chunk },
                MergeOp::RandomInterleave { seed },
                MergeOp::Staggered { overlap },
            ] {
                let merged = merger.merge(&patterns, op);
                prop_assert!(merged.preserves_order_of(&patterns), "op {op:?} broke order");
            }
        }

        /// Generated patterns are always legal prefixes, and completed
        /// ones are accepted lifecycles.
        #[test]
        fn generator_emits_legal_patterns(seed in 0u64..500, s in 1usize..40) {
            let g = PatternGenerator::pcore_paper().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let p = g.generate(&mut rng, GenerateOptions::sized(s));
            prop_assert!(g.is_legal_prefix(p.symbols()));
            prop_assert!(p.len() <= s);
        }

        /// Cyclic generation emits exactly `s` services and stays legal
        /// per lifecycle segment.
        #[test]
        fn cyclic_generator_fills_size(seed in 0u64..200, s in 1usize..64) {
            let g = PatternGenerator::pcore_paper().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let p = g.generate(&mut rng, GenerateOptions::cyclic(s));
            prop_assert_eq!(p.len(), s);
            // Split at TC boundaries: every segment must be a legal prefix.
            let tc = g.regex().alphabet().sym("TC").unwrap();
            let mut segment: Vec<Sym> = Vec::new();
            for &sym in p.symbols() {
                if sym == tc && !segment.is_empty() {
                    prop_assert!(g.is_legal_prefix(&segment));
                    segment.clear();
                }
                segment.push(sym);
            }
            prop_assert!(g.is_legal_prefix(&segment));
        }
    }
}
