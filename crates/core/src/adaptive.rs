//! The adaptive testing procedure (paper Algorithm 1).
//!
//! `AdaptiveTest(RE, n, s, op)`:
//!
//! 1. generate `n` test patterns of size `s` from the PFA built over
//!    `RE` and the probability distribution;
//! 2. merge them into one interleaved pattern under `op`;
//! 3. fork the bug detector;
//! 4. let the committer issue the merged pattern to the slave while the
//!    detector monitors.
//!
//! [`AdaptiveTest::run`] performs the whole procedure on a fresh
//! [`DualCoreSystem`] and returns a [`TestReport`]. Reports carry the
//! full configuration and seed: [`AdaptiveTest::reproduce`] re-runs a
//! report's scenario and arrives at the same outcome — the paper's bug
//! reproduction story, made checkable.

use ptest_automata::{ProbabilityAssignment, Regex};
use ptest_master::{DualCoreSystem, MemoryModelSpec, PreemptionSpec, ScheduleSpec, SystemConfig};
use ptest_pcore::ProgramId;
use ptest_soc::Cycles;

use crate::committer::{CommitterError, CommitterStatus};
use crate::coverage::CoverageReport;
use crate::detector::{Bug, BugKind, DetectorConfig};
use crate::merger::MergeOp;
use crate::pattern::{MergedPattern, TestPattern};
use crate::scenario::Scenario;
use crate::trial::TrialEngine;

/// Full configuration of one adaptive-test run (Algorithm 1's inputs
/// plus the environmental knobs of this reproduction).
#[derive(Debug, Clone)]
pub struct AdaptiveTestConfig {
    /// The regular expression `RE` describing slave-service order.
    pub regex_source: String,
    /// The probability distribution `PD`.
    pub pd: ProbabilityAssignment,
    /// `n`: number of test patterns (= controlled slave processes).
    pub n: usize,
    /// `s`: size of each test pattern.
    pub s: usize,
    /// `op`: the merge policy.
    pub op: MergeOp,
    /// Master seed; all nondeterminism in the run derives from it.
    pub seed: u64,
    /// Generate patterns cyclically (restart life cycles) — the stress-
    /// test mode of case study 1.
    pub cyclic_generation: bool,
    /// Simulation budget in cycles.
    pub max_cycles: u64,
    /// Detector cadence: observe every this many cycles.
    pub check_interval: u64,
    /// Grace period after the committer finishes, letting slave tasks
    /// drain before the final no-progress checks.
    pub drain_cycles: u64,
    /// Detector thresholds.
    pub detector: DetectorConfig,
    /// Committer knobs (programs are supplied by the scenario setup).
    pub response_timeout: Cycles,
    /// Master-side pacing between commands (see
    /// [`CommitterConfig::inter_command_gap`](crate::CommitterConfig::inter_command_gap)).
    pub inter_command_gap: u64,
    /// Stack size for created tasks.
    pub stack_bytes: Option<u32>,
    /// System (kernel/scheduler) configuration.
    pub system: SystemConfig,
    /// How slave kernels are scheduled against each other
    /// ([`ScheduleSpec::LockStep`] reproduces the historical behaviour
    /// bit for bit; see the `ptest_master::sched` module).
    pub schedule: ScheduleSpec,
    /// Schedule seed override. `None` (the default) derives the seed
    /// from the trial's pattern seed, so single-trial runs stay a
    /// one-seed story; campaigns set it per trial to explore schedules
    /// independently of patterns. Reports echo the seed actually used,
    /// making every bug replayable from its `(seed, schedule_seed)`
    /// pair.
    pub schedule_seed: Option<u64>,
    /// How shared-variable stores propagate between slave kernels
    /// ([`MemoryModelSpec::SeqCst`] reproduces the historical
    /// sequentially-consistent mirroring bit for bit; see the
    /// `ptest_master::mem` module).
    pub memory: MemoryModelSpec,
    /// Memory seed override, mirroring `schedule_seed`: `None` derives
    /// the seed from the trial's pattern seed; campaigns set it per
    /// trial. Reports echo the seed actually used, completing the
    /// replayable `(seed, schedule_seed, memory_seed)` triple.
    pub memory_seed: Option<u64>,
    /// The preemption/interrupt axis: quantum time slices inside each
    /// slave kernel, seeded per-slave clock skew, and deterministic
    /// interrupt injection (see `ptest_master::preempt`). The inert
    /// default reproduces the historical unpreempted platform bit for
    /// bit.
    pub preemption: PreemptionSpec,
    /// Interrupt/preemption seed override, mirroring `schedule_seed`:
    /// `None` derives the seed from the trial's pattern seed; campaigns
    /// set it per trial. Reports echo the seed actually used, completing
    /// the replayable `(seed, schedule_seed, memory_seed, irq_seed)`
    /// quadruple. Under the inert default `preemption` the seed is
    /// recorded but has no behavioural effect.
    pub irq_seed: Option<u64>,
}

impl Default for AdaptiveTestConfig {
    fn default() -> AdaptiveTestConfig {
        AdaptiveTestConfig {
            regex_source: Regex::pcore_task_lifecycle().source().to_owned(),
            pd: ProbabilityAssignment::weights([
                ("TC", 1.0),
                ("TCH", 0.6),
                ("TS", 0.2),
                ("TD", 0.1),
                ("TY", 0.1),
                ("TR", 1.0),
            ]),
            n: 4,
            s: 8,
            op: MergeOp::cyclic(),
            seed: 2009,
            cyclic_generation: false,
            max_cycles: 2_000_000,
            check_interval: 500,
            drain_cycles: 60_000,
            detector: DetectorConfig::default(),
            response_timeout: Cycles::new(50_000),
            inter_command_gap: 16,
            stack_bytes: None,
            system: SystemConfig::default(),
            schedule: ScheduleSpec::LockStep,
            schedule_seed: None,
            memory: MemoryModelSpec::SeqCst,
            memory_seed: None,
            preemption: PreemptionSpec::default(),
            irq_seed: None,
        }
    }
}

/// Error running the adaptive test.
#[derive(Debug)]
pub enum AdaptiveTestError {
    /// The regular expression failed to parse.
    Regex(ptest_automata::ParseRegexError),
    /// The PFA could not be built from the distribution.
    Pfa(ptest_automata::PfaError),
    /// The committer rejected the configuration.
    Committer(CommitterError),
}

impl std::fmt::Display for AdaptiveTestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptiveTestError::Regex(e) => write!(f, "regex error: {e}"),
            AdaptiveTestError::Pfa(e) => write!(f, "pfa error: {e}"),
            AdaptiveTestError::Committer(e) => write!(f, "committer error: {e}"),
        }
    }
}

impl std::error::Error for AdaptiveTestError {}

/// Outcome of one adaptive-test run.
#[derive(Debug)]
pub struct TestReport {
    /// Bugs found, in detection order.
    pub bugs: Vec<Bug>,
    /// Remote commands issued by the committer.
    pub commands_issued: u64,
    /// Error replies received.
    pub error_replies: u64,
    /// Virtual cycles consumed.
    pub cycles: u64,
    /// Final committer status.
    pub committer_status: CommitterStatus,
    /// Whether the merged pattern was fully delivered.
    pub completed: bool,
    /// Pattern coverage over the service DFA.
    pub coverage: CoverageReport,
    /// Per-step execution records (request, reply, timing) of the
    /// committer.
    pub exec_records: Vec<crate::committer::ExecRecord>,
    /// The generated patterns (for inspection/replay).
    pub patterns: Vec<TestPattern>,
    /// The merged pattern that was executed.
    pub merged: MergedPattern,
    /// The schedule seed the trial ran under (also echoed into
    /// `config.schedule_seed`): together with `config.seed` it replays
    /// the trial — including any reported bug — byte for byte.
    pub schedule_seed: u64,
    /// The memory seed the trial ran under (also echoed into
    /// `config.memory_seed`).
    pub memory_seed: u64,
    /// The interrupt/preemption seed the trial ran under (also echoed
    /// into `config.irq_seed`), completing the replayable
    /// `(seed, schedule_seed, memory_seed, irq_seed)` quadruple.
    pub irq_seed: u64,
    /// Echo of the run configuration (reproduction input).
    pub config: AdaptiveTestConfig,
}

impl TestReport {
    /// Whether any bug of the given discriminant was found.
    #[must_use]
    pub fn found<F: Fn(&BugKind) -> bool>(&self, pred: F) -> bool {
        self.bugs.iter().any(|b| pred(&b.kind))
    }

    /// Commands issued before the first bug was detected, or all
    /// commands if none was (the "commands to detection" metric of the
    /// baseline comparisons).
    #[must_use]
    pub fn commands_to_first_bug(&self) -> Option<u64> {
        if self.bugs.is_empty() {
            None
        } else {
            Some(self.commands_issued)
        }
    }

    /// Error replies caused by *illegal service orders* (suspend twice,
    /// resume a running task, duplicate priorities, …) as opposed to
    /// benign races with task self-exit or resource exhaustion. pTest's
    /// PFA guarantees this is zero — the legality property the paper's
    /// "rational order" patterns buy over random testing.
    #[must_use]
    pub fn ordering_errors(&self) -> usize {
        use ptest_pcore::SvcError;
        self.exec_records
            .iter()
            .filter(|r| {
                matches!(
                    r.result,
                    Some(Err(SvcError::AlreadySuspended(_)
                        | SvcError::NotSuspended(_)
                        | SvcError::PriorityInUse(_)
                        | SvcError::NoSuchProgram(_)))
                )
            })
            .count()
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let bug_list = if self.bugs.is_empty() {
            "no bugs".to_owned()
        } else {
            self.bugs
                .iter()
                .map(|b| b.kind.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        };
        let sched = match self.config.schedule {
            ScheduleSpec::LockStep => String::new(),
            spec => format!(" sched={} sched_seed={}", spec.label(), self.schedule_seed),
        };
        let mem = match self.config.memory {
            MemoryModelSpec::SeqCst => String::new(),
            spec => format!(" mem={} mem_seed={}", spec.label(), self.memory_seed),
        };
        let preempt = if self.config.preemption.is_inert() {
            String::new()
        } else {
            format!(
                " preempt={} irq_seed={}",
                self.config.preemption.label(),
                self.irq_seed
            )
        };
        format!(
            "n={} s={} op={:?} seed={}{}{}{}: {} cmds, {} errors, {} cycles, {:?} -> {}",
            self.config.n,
            self.config.s,
            self.config.op,
            self.config.seed,
            sched,
            mem,
            preempt,
            self.commands_issued,
            self.error_replies,
            self.cycles,
            self.committer_status,
            bug_list
        )
    }
}

/// The adaptive testing tool (Algorithm 1).
#[derive(Debug)]
pub struct AdaptiveTest;

impl AdaptiveTest {
    /// Runs the full procedure on a fresh system.
    ///
    /// `setup` prepares the slave for the scenario — registering task
    /// programs, creating semaphores/mutexes, seeding shared variables —
    /// and returns the programs that `task_create` commands should start
    /// (one per pattern, cycled if shorter).
    ///
    /// This is a thin single-trial wrapper over [`TrialEngine`], the
    /// engine the campaign layer fans out across worker threads: compile
    /// the PFA pipeline once, run one trial at the configured seed.
    ///
    /// # Errors
    ///
    /// [`AdaptiveTestError`] if the regex, distribution, or committer
    /// configuration is invalid.
    pub fn run(
        cfg: AdaptiveTestConfig,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
    ) -> Result<TestReport, AdaptiveTestError> {
        let seed = cfg.seed;
        TrialEngine::new(cfg)?.run_trial(seed, setup)
    }

    /// Runs one seeded trial of a [`Scenario`] (its base configuration
    /// with `seed` substituted).
    ///
    /// # Errors
    ///
    /// As for [`AdaptiveTest::run`].
    pub fn run_scenario(
        scenario: &dyn Scenario,
        seed: u64,
    ) -> Result<TestReport, AdaptiveTestError> {
        TrialEngine::new(scenario.base_config())?.run_scenario_trial(scenario, seed)
    }

    /// Re-runs the scenario of a report (same configuration, same seed).
    /// Determinism guarantees the same outcome; integration tests assert
    /// it.
    ///
    /// # Errors
    ///
    /// As for [`AdaptiveTest::run`].
    pub fn reproduce(
        report: &TestReport,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
    ) -> Result<TestReport, AdaptiveTestError> {
        AdaptiveTest::run(report.config.clone(), setup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{Op, Program};

    fn quick_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        vec![sys
            .kernel_mut()
            .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
    }

    #[test]
    fn healthy_run_finds_no_bugs() {
        let cfg = AdaptiveTestConfig {
            n: 3,
            s: 6,
            seed: 42,
            ..AdaptiveTestConfig::default()
        };
        let report = AdaptiveTest::run(cfg, quick_setup).unwrap();
        assert!(report.completed, "{}", report.summary());
        assert!(report.bugs.is_empty(), "{}", report.summary());
        assert!(report.commands_issued > 0);
        assert!(report.coverage.transition_coverage() > 0.0);
    }

    #[test]
    fn gc_fault_is_found_under_stress() {
        let mut cfg = AdaptiveTestConfig {
            n: 4,
            s: 64,
            cyclic_generation: true,
            seed: 7,
            op: MergeOp::RoundRobin { chunk: 1 },
            ..AdaptiveTestConfig::default()
        };
        cfg.system.kernel.heap_bytes = 8 * 1024;
        cfg.system.kernel.gc_fault = ptest_pcore::GcFaultMode::LeakDeadBlocks { leak_every: 1 };
        let report = AdaptiveTest::run(cfg, quick_setup).unwrap();
        assert!(
            report.found(|k| matches!(
                k,
                BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
            )),
            "{}",
            report.summary()
        );
        // The bug report carries reproduction material.
        let bug = &report.bugs[0];
        assert!(!bug.state_records.is_empty());
        assert!(!bug.trace_tail.is_empty());
    }

    #[test]
    fn reproduce_reaches_same_outcome() {
        let mut cfg = AdaptiveTestConfig {
            n: 4,
            s: 48,
            cyclic_generation: true,
            seed: 99,
            ..AdaptiveTestConfig::default()
        };
        cfg.system.kernel.heap_bytes = 8 * 1024;
        cfg.system.kernel.gc_fault = ptest_pcore::GcFaultMode::LeakDeadBlocks { leak_every: 1 };
        let first = AdaptiveTest::run(cfg, quick_setup).unwrap();
        let again = AdaptiveTest::reproduce(&first, quick_setup).unwrap();
        assert_eq!(first.bugs.len(), again.bugs.len());
        for (a, b) in first.bugs.iter().zip(&again.bugs) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.detected_at, b.detected_at, "bit-for-bit reproduction");
        }
        assert_eq!(first.commands_issued, again.commands_issued);
        assert_eq!(first.cycles, again.cycles);
    }

    #[test]
    fn different_seeds_generate_different_patterns() {
        let a = AdaptiveTest::run(
            AdaptiveTestConfig {
                seed: 1,
                ..AdaptiveTestConfig::default()
            },
            quick_setup,
        )
        .unwrap();
        let b = AdaptiveTest::run(
            AdaptiveTestConfig {
                seed: 2,
                ..AdaptiveTestConfig::default()
            },
            quick_setup,
        )
        .unwrap();
        assert_ne!(a.patterns, b.patterns);
    }

    #[test]
    fn run_scenario_matches_closure_run() {
        let scenario = crate::FnScenario::new(
            "quick",
            AdaptiveTestConfig {
                n: 3,
                s: 6,
                ..AdaptiveTestConfig::default()
            },
            quick_setup,
        );
        let via_scenario = AdaptiveTest::run_scenario(&scenario, 42).unwrap();
        let via_closure = AdaptiveTest::run(
            AdaptiveTestConfig {
                n: 3,
                s: 6,
                seed: 42,
                ..AdaptiveTestConfig::default()
            },
            quick_setup,
        )
        .unwrap();
        assert_eq!(via_scenario.patterns, via_closure.patterns);
        assert_eq!(via_scenario.cycles, via_closure.cycles);
    }

    #[test]
    fn bad_regex_is_reported() {
        let cfg = AdaptiveTestConfig {
            regex_source: "((".to_owned(),
            ..AdaptiveTestConfig::default()
        };
        assert!(matches!(
            AdaptiveTest::run(cfg, quick_setup),
            Err(AdaptiveTestError::Regex(_))
        ));
    }
}
