//! The pattern merger (paper §II-B, Algorithm 1 line 4).
//!
//! The merger "extracts subsequences from each test pattern … and then
//! systematically merges all subsequences into one final test pattern. …
//! It is similar to a process scheduler." The `op` configuration
//! parameter selects a merge policy aimed at a specific bug class
//! (Algorithm 1's `op` that "can help the bug detector find out the
//! specific bug such as slave system crashes or concurrency faults").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pattern::{MergedPattern, MergedStep, TestPattern};

/// The merge policy (`op` of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeOp {
    /// Concatenate the patterns one after another: no interleaving at
    /// all. Useful as a degenerate baseline — concurrency bugs that need
    /// overlapping life cycles cannot fire under it.
    Sequential,
    /// Take `chunk` services from each non-exhausted pattern in cyclic
    /// order until all are drained. `chunk = 1` is strict alternation —
    /// the policy that forces "cyclic execution sequences" (case study
    /// 2's deadlock driver).
    RoundRobin {
        /// Services taken from a pattern per turn.
        chunk: usize,
    },
    /// Random interleaving: at each step pick a non-exhausted pattern
    /// with probability proportional to its remaining length (a uniform
    /// sample over all order-preserving interleavings).
    RandomInterleave {
        /// RNG seed (merging is deterministic per seed).
        seed: u64,
    },
    /// Exhaust pattern after pattern but *overlap tails*: issue the first
    /// `overlap` services of the next pattern before the current one
    /// finishes. Models pipelined task start-up, the paper's stress-test
    /// shape for keeping exactly N tasks alive.
    Staggered {
        /// Number of services of overlap between consecutive patterns.
        overlap: usize,
    },
}

impl MergeOp {
    /// The strict-alternation round robin (the deadlock-hunting `op`).
    #[must_use]
    pub fn cyclic() -> MergeOp {
        MergeOp::RoundRobin { chunk: 1 }
    }
}

/// The pattern merger.
#[derive(Debug, Clone, Copy, Default)]
pub struct PatternMerger;

impl PatternMerger {
    /// Creates a merger.
    #[must_use]
    pub fn new() -> PatternMerger {
        PatternMerger
    }

    /// Merges `patterns` into one interleaved pattern under `op`.
    ///
    /// The merge always preserves each source pattern's internal order
    /// (verified by [`MergedPattern::preserves_order_of`] in tests): the
    /// merger schedules, it never reorders.
    #[must_use]
    pub fn merge(&self, patterns: &[TestPattern], op: MergeOp) -> MergedPattern {
        match op {
            MergeOp::Sequential => self.merge_sequential(patterns),
            MergeOp::RoundRobin { chunk } => self.merge_round_robin(patterns, chunk.max(1)),
            MergeOp::RandomInterleave { seed } => self.merge_random(patterns, seed),
            MergeOp::Staggered { overlap } => self.merge_staggered(patterns, overlap),
        }
    }

    fn merge_sequential(&self, patterns: &[TestPattern]) -> MergedPattern {
        let mut steps = Vec::new();
        for (i, p) in patterns.iter().enumerate() {
            steps.extend(
                p.symbols()
                    .iter()
                    .map(|&sym| MergedStep { pattern: i, sym }),
            );
        }
        MergedPattern::new(steps)
    }

    fn merge_round_robin(&self, patterns: &[TestPattern], chunk: usize) -> MergedPattern {
        let mut cursors = vec![0usize; patterns.len()];
        let total: usize = patterns.iter().map(TestPattern::len).sum();
        let mut steps = Vec::with_capacity(total);
        while steps.len() < total {
            for (i, p) in patterns.iter().enumerate() {
                for _ in 0..chunk {
                    if cursors[i] < p.len() {
                        steps.push(MergedStep {
                            pattern: i,
                            sym: p.symbols()[cursors[i]],
                        });
                        cursors[i] += 1;
                    }
                }
            }
        }
        MergedPattern::new(steps)
    }

    fn merge_random(&self, patterns: &[TestPattern], seed: u64) -> MergedPattern {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cursors = vec![0usize; patterns.len()];
        let mut remaining: Vec<usize> = patterns.iter().map(TestPattern::len).collect();
        let total: usize = remaining.iter().sum();
        let mut steps = Vec::with_capacity(total);
        let mut left = total;
        while left > 0 {
            // Weighted pick proportional to remaining length: uniform over
            // all order-preserving interleavings.
            let mut roll = rng.random_range(0..left);
            let mut chosen = 0;
            for (i, &rem) in remaining.iter().enumerate() {
                if roll < rem {
                    chosen = i;
                    break;
                }
                roll -= rem;
            }
            steps.push(MergedStep {
                pattern: chosen,
                sym: patterns[chosen].symbols()[cursors[chosen]],
            });
            cursors[chosen] += 1;
            remaining[chosen] -= 1;
            left -= 1;
        }
        MergedPattern::new(steps)
    }

    fn merge_staggered(&self, patterns: &[TestPattern], overlap: usize) -> MergedPattern {
        // Pattern i+1 starts `overlap` steps before pattern i ends.
        let mut steps = Vec::new();
        let mut carry: Vec<(usize, Vec<ptest_automata::Sym>)> = Vec::new();
        for (i, p) in patterns.iter().enumerate() {
            let syms = p.symbols().to_vec();
            let cut = syms.len().saturating_sub(overlap);
            // Flush previous carry interleaved with this pattern's head.
            if let Some((j, tail)) = carry.pop() {
                let head: Vec<_> = syms[..cut.min(syms.len())].to_vec();
                let mut a = tail.into_iter().peekable();
                let mut b = head.into_iter().peekable();
                loop {
                    match (a.peek().is_some(), b.peek().is_some()) {
                        (true, true) => {
                            steps.push(MergedStep {
                                pattern: j,
                                sym: a.next().expect("peeked"),
                            });
                            steps.push(MergedStep {
                                pattern: i,
                                sym: b.next().expect("peeked"),
                            });
                        }
                        (true, false) => {
                            steps.push(MergedStep {
                                pattern: j,
                                sym: a.next().expect("peeked"),
                            });
                        }
                        (false, true) => {
                            steps.push(MergedStep {
                                pattern: i,
                                sym: b.next().expect("peeked"),
                            });
                        }
                        (false, false) => break,
                    }
                }
            } else {
                steps.extend(
                    syms[..cut.min(syms.len())]
                        .iter()
                        .map(|&sym| MergedStep { pattern: i, sym }),
                );
            }
            if cut < syms.len() && i + 1 < patterns.len() {
                carry.push((i, syms[cut..].to_vec()));
            } else {
                steps.extend(
                    syms[cut.min(syms.len())..]
                        .iter()
                        .map(|&sym| MergedStep { pattern: i, sym }),
                );
            }
        }
        if let Some((j, tail)) = carry.pop() {
            steps.extend(tail.into_iter().map(|sym| MergedStep { pattern: j, sym }));
        }
        MergedPattern::new(steps)
    }

    /// Enumerates **all** order-preserving interleavings of `patterns`
    /// (the systematic exploration that a CHESS-style baseline performs).
    /// The count is the multinomial coefficient; callers must bound their
    /// input sizes. Returns `None` if the count would exceed `limit`.
    #[must_use]
    pub fn enumerate_all(
        &self,
        patterns: &[TestPattern],
        limit: usize,
    ) -> Option<Vec<MergedPattern>> {
        let lens: Vec<usize> = patterns.iter().map(TestPattern::len).collect();
        let count = multinomial(&lens)?;
        if count > limit {
            return None;
        }
        let mut out = Vec::with_capacity(count);
        let mut cursors = vec![0usize; patterns.len()];
        let mut current = Vec::new();
        enumerate_rec(patterns, &mut cursors, &mut current, &mut out);
        Some(out)
    }
}

fn multinomial(lens: &[usize]) -> Option<usize> {
    // (Σ lens)! / Π lens! computed incrementally with overflow checks.
    let mut result: usize = 1;
    let mut seen: usize = 0;
    for &len in lens {
        for i in 1..=len {
            seen += 1;
            result = result.checked_mul(seen)?;
            result /= i;
        }
    }
    Some(result)
}

fn enumerate_rec(
    patterns: &[TestPattern],
    cursors: &mut Vec<usize>,
    current: &mut Vec<MergedStep>,
    out: &mut Vec<MergedPattern>,
) {
    let done = cursors.iter().zip(patterns).all(|(&c, p)| c == p.len());
    if done {
        out.push(MergedPattern::new(current.clone()));
        return;
    }
    for i in 0..patterns.len() {
        if cursors[i] < patterns[i].len() {
            let sym = patterns[i].symbols()[cursors[i]];
            cursors[i] += 1;
            current.push(MergedStep { pattern: i, sym });
            enumerate_rec(patterns, cursors, current, out);
            current.pop();
            cursors[i] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_automata::Sym;

    fn pat(syms: &[u16]) -> TestPattern {
        TestPattern::new(syms.iter().map(|&i| Sym(i)).collect())
    }

    fn fixtures() -> Vec<TestPattern> {
        vec![pat(&[1, 2, 3]), pat(&[10, 20]), pat(&[100])]
    }

    #[test]
    fn sequential_concatenates() {
        let m = PatternMerger::new().merge(&fixtures(), MergeOp::Sequential);
        let order: Vec<usize> = m.steps().iter().map(|s| s.pattern).collect();
        assert_eq!(order, vec![0, 0, 0, 1, 1, 2]);
        assert!(m.preserves_order_of(&fixtures()));
    }

    #[test]
    fn round_robin_alternates() {
        let m = PatternMerger::new().merge(&fixtures(), MergeOp::cyclic());
        let order: Vec<usize> = m.steps().iter().map(|s| s.pattern).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 0]);
        assert!(m.preserves_order_of(&fixtures()));
    }

    #[test]
    fn round_robin_chunked() {
        let m = PatternMerger::new().merge(&fixtures(), MergeOp::RoundRobin { chunk: 2 });
        let order: Vec<usize> = m.steps().iter().map(|s| s.pattern).collect();
        assert_eq!(order, vec![0, 0, 1, 1, 2, 0]);
        assert!(m.preserves_order_of(&fixtures()));
    }

    #[test]
    fn random_interleave_is_deterministic_per_seed_and_preserving() {
        let merger = PatternMerger::new();
        let a = merger.merge(&fixtures(), MergeOp::RandomInterleave { seed: 9 });
        let b = merger.merge(&fixtures(), MergeOp::RandomInterleave { seed: 9 });
        let c = merger.merge(&fixtures(), MergeOp::RandomInterleave { seed: 10 });
        assert_eq!(a, b);
        assert!(a.preserves_order_of(&fixtures()));
        assert!(c.preserves_order_of(&fixtures()));
    }

    #[test]
    fn random_interleave_varies_with_seed() {
        let merger = PatternMerger::new();
        let distinct: std::collections::HashSet<Vec<usize>> = (0..20)
            .map(|seed| {
                merger
                    .merge(&fixtures(), MergeOp::RandomInterleave { seed })
                    .steps()
                    .iter()
                    .map(|s| s.pattern)
                    .collect()
            })
            .collect();
        assert!(
            distinct.len() > 5,
            "20 seeds should produce several interleavings"
        );
    }

    #[test]
    fn staggered_overlaps_consecutive_patterns() {
        let patterns = vec![pat(&[1, 2, 3, 4]), pat(&[10, 20, 30])];
        let m = PatternMerger::new().merge(&patterns, MergeOp::Staggered { overlap: 2 });
        assert!(m.preserves_order_of(&patterns));
        // The first pattern's tail (3, 4) interleaves with the second's head.
        let order: Vec<usize> = m.steps().iter().map(|s| s.pattern).collect();
        let first_of_1 = order.iter().position(|&p| p == 1).unwrap();
        let last_of_0 = order.iter().rposition(|&p| p == 0).unwrap();
        assert!(first_of_1 < last_of_0, "patterns must overlap: {order:?}");
    }

    #[test]
    fn enumerate_all_counts_multinomial() {
        let patterns = vec![pat(&[1, 2]), pat(&[10])];
        let all = PatternMerger::new().enumerate_all(&patterns, 100).unwrap();
        // C(3,1) = 3 interleavings.
        assert_eq!(all.len(), 3);
        for m in &all {
            assert!(m.preserves_order_of(&patterns));
        }
        // All distinct.
        let set: std::collections::HashSet<String> = all
            .iter()
            .map(|m| {
                format!(
                    "{:?}",
                    m.steps().iter().map(|s| s.pattern).collect::<Vec<_>>()
                )
            })
            .collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn enumerate_all_respects_limit() {
        let patterns = vec![pat(&[1; 8]), pat(&[2; 8])];
        // C(16,8) = 12870 > 1000.
        assert!(PatternMerger::new()
            .enumerate_all(&patterns, 1000)
            .is_none());
        assert!(PatternMerger::new()
            .enumerate_all(&patterns, 13000)
            .is_some());
    }

    #[test]
    fn empty_patterns_merge_to_empty() {
        let merger = PatternMerger::new();
        for op in [
            MergeOp::Sequential,
            MergeOp::cyclic(),
            MergeOp::RandomInterleave { seed: 1 },
            MergeOp::Staggered { overlap: 1 },
        ] {
            assert!(merger.merge(&[], op).is_empty());
            assert!(merger.merge(&[pat(&[])], op).is_empty());
        }
    }
}
