//! The bug detector (paper §II-B): monitors test progress, detects
//! failures, and dumps reproduction information.
//!
//! Detection rules, mapped to the paper's criteria ("if processes do not
//! terminate or stay in the same state for a period of time, the system
//! may contain synchronization anomalies"):
//!
//! * **Slave crash** — a kernel panicked (observed through the debug
//!   window) or commands time out against a silent slave.
//! * **Deadlock** — a cycle in a kernel's wait-for graph (`waiter →
//!   holder` edges over mutexes).
//! * **Cross-core deadlock** — a cycle *spanning kernels*: every live
//!   task of the involved slaves is blocked, and the slaves wait on each
//!   other through cross-core semaphore hand-off links
//!   ([`ptest_master::SemLink`]). Impossible on a single-slave platform.
//! * **Starvation** — a live task whose instruction counter has not moved
//!   for a whole observation window: either runnable-but-never-scheduled
//!   (CPU starvation under a spinning higher-priority task) or blocked
//!   forever on a resource nobody posts.
//! * **Livelock / no termination** — tasks that keep retiring
//!   instructions but never terminate after the committer has delivered
//!   the whole pattern (Figure 1's spin loops).
//! * **Task fault** — a task killed by a kernel (stack overflow, bad
//!   free, …), surfaced from exit records.
//!
//! On an N-slave [`MultiCoreSystem`] every rule runs per slave kernel in
//! slave order; on the dual-core platform the behaviour (including report
//! rendering) is identical to the historical single-kernel detector.

use std::collections::HashMap;
use std::fmt;

use ptest_master::{MultiCoreSystem, SnapshotCache};
use ptest_pcore::{ExitKind, KernelPanic, KernelSnapshot, TaskFault, TaskId, TaskState, WaitEdge};
use ptest_soc::{CoreId, Cycles};

use crate::committer::Committer;
use crate::record::StateRecord;

/// Configuration of the bug detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// A command unanswered for this long indicates a crashed/wedged
    /// slave.
    pub command_timeout: Cycles,
    /// Observation window for the no-progress rules.
    pub progress_window: Cycles,
    /// How many trailing kernel-trace events to embed in bug reports.
    pub trace_tail: usize,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            command_timeout: Cycles::new(50_000),
            progress_window: Cycles::new(20_000),
            trace_tail: 64,
        }
    }
}

/// The kind of anomaly detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BugKind {
    /// A slave kernel died.
    SlaveCrash {
        /// The kernel's fatal condition.
        panic: KernelPanic,
    },
    /// Commands outstanding past the timeout against a silent slave.
    CommandTimeout {
        /// Number of overdue commands.
        overdue: usize,
    },
    /// A cycle in one kernel's wait-for graph.
    Deadlock {
        /// The tasks forming the cycle, in cycle order.
        cycle: Vec<TaskId>,
    },
    /// A wait-for cycle spanning kernels: each listed task is blocked on
    /// a cross-core semaphore hand-off fed by the next slave in the
    /// cycle. This class of bug cannot exist on a single-slave platform.
    CrossCoreDeadlock {
        /// The blocked tasks forming the cycle, as `(core, task)` pairs
        /// in cycle order.
        cycle: Vec<(CoreId, TaskId)>,
    },
    /// A task made no progress for a whole window.
    Starvation {
        /// The starved task.
        task: TaskId,
        /// Whether it was runnable (CPU starvation) or blocked (resource
        /// starvation).
        runnable: bool,
    },
    /// Tasks keep running but never terminate after the test pattern
    /// completed.
    Livelock {
        /// The non-terminating tasks.
        tasks: Vec<TaskId>,
    },
    /// A task was killed by a kernel-detected fault.
    TaskFault {
        /// The faulted task.
        task: TaskId,
        /// The fault.
        fault: TaskFault,
    },
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::SlaveCrash { panic } => write!(f, "slave crash: {panic}"),
            BugKind::CommandTimeout { overdue } => {
                write!(f, "command timeout: {overdue} commands unanswered")
            }
            BugKind::Deadlock { cycle } => {
                let names: Vec<String> = cycle.iter().map(ToString::to_string).collect();
                write!(f, "deadlock cycle: {}", names.join(" -> "))
            }
            BugKind::CrossCoreDeadlock { cycle } => {
                let names: Vec<String> = cycle
                    .iter()
                    .map(|(core, task)| format!("{core}:{task}"))
                    .collect();
                write!(f, "cross-core deadlock cycle: {}", names.join(" -> "))
            }
            BugKind::Starvation { task, runnable } => {
                let how = if *runnable { "runnable" } else { "blocked" };
                write!(f, "starvation: {task} made no progress while {how}")
            }
            BugKind::Livelock { tasks } => {
                let names: Vec<String> = tasks.iter().map(ToString::to_string).collect();
                write!(f, "livelock/no-termination: {}", names.join(", "))
            }
            BugKind::TaskFault { task, fault } => write!(f, "task fault: {task} {fault}"),
        }
    }
}

/// A detected bug, with everything needed to reproduce it (the paper's
/// "dumps the related information to help users reproduce the bugs").
#[derive(Debug, Clone)]
pub struct Bug {
    /// What was detected.
    pub kind: BugKind,
    /// The slave core the anomaly concerns (slave 0 for master-side and
    /// system-wide anomalies like command timeouts; the first involved
    /// core for cross-core deadlocks).
    pub core: CoreId,
    /// Virtual time of detection.
    pub detected_at: Cycles,
    /// Snapshot of the concerned kernel at detection.
    pub snapshot: KernelSnapshot,
    /// Definition-2 state records of every controlled process.
    pub state_records: Vec<StateRecord>,
    /// Tail of the concerned kernel's trace.
    pub trace_tail: Vec<String>,
}

impl Bug {
    /// The bug's detail line: the kind, prefixed with the concerned core
    /// beyond slave 0 so multi-slave reports stay attributable while
    /// dual-core reports render byte-identically to the original tool.
    #[must_use]
    pub fn detail(&self) -> String {
        if self.core == CoreId::Dsp || matches!(self.kind, BugKind::CrossCoreDeadlock { .. }) {
            self.kind.to_string()
        } else {
            format!("[{}] {}", self.core, self.kind)
        }
    }
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.detected_at, self.detail())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Progress {
    ops: u64,
    since: Cycles,
}

/// A set of slave indices as a bitset (one word covers 64 slaves), so
/// the once-per-anomaly dedup checks in the observation hot path are
/// O(1) instead of a linear scan per slave per observation.
#[derive(Debug, Clone, Default)]
struct SlaveSet {
    bits: Vec<u64>,
}

impl SlaveSet {
    /// Inserts `slave`, returning `true` when it was not already present.
    fn insert(&mut self, slave: usize) -> bool {
        let word = slave / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        let mask = 1u64 << (slave % 64);
        let fresh = self.bits[word] & mask == 0;
        self.bits[word] |= mask;
        fresh
    }

    fn contains(&self, slave: usize) -> bool {
        self.bits
            .get(slave / 64)
            .is_some_and(|w| w & (1u64 << (slave % 64)) != 0)
    }
}

/// A set of `(slave, task)` pairs: one 256-bit block per slave (task
/// slots are `u8`-indexed, so 256 bits covers every possible task id).
#[derive(Debug, Clone, Default)]
struct SlaveTaskSet {
    bits: Vec<[u64; 4]>,
}

impl SlaveTaskSet {
    /// Inserts the pair, returning `true` when it was not already present.
    fn insert(&mut self, slave: usize, task: TaskId) -> bool {
        if slave >= self.bits.len() {
            self.bits.resize(slave + 1, [0; 4]);
        }
        let slot = task.index();
        let mask = 1u64 << (slot % 64);
        let word = &mut self.bits[slave][slot / 64];
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }
}

/// The bug detector. Runs as an independent observer (the paper forks it
/// as a child process); here it is polled with
/// [`BugDetector::observe`] at a configurable cadence.
#[derive(Debug, Clone)]
pub struct BugDetector {
    cfg: DetectorConfig,
    progress: HashMap<(usize, TaskId), Progress>,
    reported_faults: SlaveTaskSet,
    reported_deadlock: SlaveSet,
    reported_cross_core: bool,
    reported_crash: SlaveSet,
    reported_timeout: SlaveSet,
    reported_livelock: SlaveSet,
    reported_starvation: SlaveTaskSet,
    /// Virtual time at which the committer was first observed done.
    done_since: Option<Cycles>,
    /// `committer_done` at the previous observation: when the gate opens
    /// the gated rules must re-run even if every kernel is clean.
    last_done: bool,
    /// Reused across observations: per-kernel snapshots (task and
    /// wait-edge buffers included) and the progress-rule work lists. The
    /// detector observes thousands of times per trial; without these the
    /// observation cadence dominates the trial's allocation profile.
    snapshot_scratch: Vec<KernelSnapshot>,
    stalled_scratch: Vec<(usize, TaskId, bool)>,
    moving_scratch: Vec<(usize, TaskId)>,
}

impl BugDetector {
    /// Creates a detector.
    #[must_use]
    pub fn new(cfg: DetectorConfig) -> BugDetector {
        BugDetector {
            cfg,
            progress: HashMap::new(),
            reported_faults: SlaveTaskSet::default(),
            reported_deadlock: SlaveSet::default(),
            reported_cross_core: false,
            reported_crash: SlaveSet::default(),
            reported_timeout: SlaveSet::default(),
            reported_livelock: SlaveSet::default(),
            reported_starvation: SlaveTaskSet::default(),
            done_since: None,
            last_done: false,
            snapshot_scratch: Vec::new(),
            stalled_scratch: Vec::new(),
            moving_scratch: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    fn make_bug(
        &self,
        kind: BugKind,
        core: CoreId,
        sys: &MultiCoreSystem,
        committer: Option<&Committer>,
        snapshot: &KernelSnapshot,
    ) -> Bug {
        let slave = core.slave_index().unwrap_or(0);
        Bug {
            kind,
            core,
            detected_at: sys.now(),
            snapshot: snapshot.clone(),
            state_records: committer.map(|c| c.state_records(sys)).unwrap_or_default(),
            trace_tail: sys
                .kernel_of(slave)
                .trace()
                .tail(self.cfg.trace_tail)
                .iter()
                .map(ToString::to_string)
                .collect(),
        }
    }

    /// Observes the system once, returning any *newly* detected bugs
    /// (each anomaly is reported once).
    ///
    /// `committer_done` gates the no-progress rules: while commands are
    /// still being delivered, long-running tasks are expected, so only
    /// crash/timeout/deadlock/fault detection is active. Cross-core
    /// deadlock detection is likewise gated, because an in-flight
    /// `task_create` could still start the task that would resolve the
    /// wait.
    pub fn observe(
        &mut self,
        sys: &MultiCoreSystem,
        committer: Option<&Committer>,
        committer_done: bool,
    ) -> Vec<Bug> {
        let mut snapshots = std::mem::take(&mut self.snapshot_scratch);
        let bugs = self.observe_with(sys, committer, committer_done, &mut snapshots);
        self.snapshot_scratch = snapshots;
        bugs
    }

    /// [`BugDetector::observe`] with a caller-owned snapshot buffer: one
    /// batched snapshot pass over every kernel per observation step, into
    /// buffers retained from the previous step — the per-kernel
    /// `Kernel::snapshot()` allocations this replaces used to dominate
    /// the trial hot loop. The trial engine passes its per-worker
    /// [`TrialScratch`](crate::TrialScratch) buffer here so the working
    /// set survives across trials, not just across steps.
    pub fn observe_with(
        &mut self,
        sys: &MultiCoreSystem,
        committer: Option<&Committer>,
        committer_done: bool,
        snapshots: &mut Vec<KernelSnapshot>,
    ) -> Vec<Bug> {
        sys.snapshots_into(snapshots);
        self.check_rules(sys, committer, committer_done, snapshots, None)
    }

    /// [`BugDetector::observe_with`] through an epoch-keyed
    /// [`SnapshotCache`]: kernels whose change epoch is unchanged since
    /// the previous observation skip re-serialization (only their scalar
    /// counters are refreshed), and the state-change rules (crash, task
    /// fault, deadlock, cross-core) skip those *clean* kernels entirely.
    /// The time-driven rules (command timeout, starvation, livelock)
    /// still run every observation over the cached — content-identical —
    /// snapshots, so detection cadence and report bytes are unchanged.
    ///
    /// The cache must be [`reset`](SnapshotCache::reset) between trials.
    pub fn observe_cached(
        &mut self,
        sys: &MultiCoreSystem,
        committer: Option<&Committer>,
        committer_done: bool,
        cache: &mut SnapshotCache,
    ) -> Vec<Bug> {
        sys.snapshots_into_cached(cache);
        self.check_rules(
            sys,
            committer,
            committer_done,
            cache.snapshots(),
            Some(cache.dirty()),
        )
    }

    /// Runs every detection rule over this step's batched snapshots.
    /// Rule order (crash, timeout, fault, deadlock, cross-core,
    /// starvation, livelock — each per slave in slave order) is part of
    /// the archive format: reports must stay byte-identical across
    /// reruns *and* releases.
    ///
    /// `dirty` (one flag per slave, `None` = treat everything as dirty)
    /// gates the purely state-driven rules: a kernel whose change epoch
    /// has not moved since the last observation cannot newly panic,
    /// fault a task, or grow a wait-for cycle, so those rules skip it.
    /// Every state transition bumps the epoch *in* the transitioning
    /// cycle, and observations happen on a fixed cadence, so a dirty
    /// kernel is always observed dirty at least once.
    fn check_rules(
        &mut self,
        sys: &MultiCoreSystem,
        committer: Option<&Committer>,
        committer_done: bool,
        snapshots: &[KernelSnapshot],
        dirty: Option<&[bool]>,
    ) -> Vec<Bug> {
        let now = sys.now();
        let is_dirty = |slave: usize| dirty.is_none_or(|d| d[slave]);
        let mut bugs = Vec::new();

        // --- Crash (debug window), per slave.
        for (slave, snapshot) in snapshots.iter().enumerate() {
            if !is_dirty(slave) {
                continue;
            }
            if let Some(panic) = snapshot.panic {
                if self.reported_crash.insert(slave) {
                    bugs.push(self.make_bug(
                        BugKind::SlaveCrash { panic },
                        CoreId::slave(slave),
                        sys,
                        committer,
                        snapshot,
                    ));
                }
            }
        }
        // --- Crash (timeout path: silent slave), per lane. Time-driven:
        //     commands go overdue while the slave stays clean, so this
        //     rule never skips.
        for (slave, snapshot) in snapshots.iter().enumerate() {
            let overdue = sys.overdue_count_for(slave, self.cfg.command_timeout);
            if overdue > 0 && self.reported_timeout.insert(slave) {
                bugs.push(self.make_bug(
                    BugKind::CommandTimeout { overdue },
                    CoreId::slave(slave),
                    sys,
                    committer,
                    snapshot,
                ));
            }
        }
        // --- Task faults, per slave.
        for (slave, snapshot) in snapshots.iter().enumerate() {
            if !is_dirty(slave) {
                continue;
            }
            for t in &snapshot.tasks {
                if let TaskState::Terminated(ExitKind::Faulted(fault)) = t.state {
                    if self.reported_faults.insert(slave, t.id) {
                        bugs.push(self.make_bug(
                            BugKind::TaskFault { task: t.id, fault },
                            CoreId::slave(slave),
                            sys,
                            committer,
                            snapshot,
                        ));
                    }
                }
            }
        }
        // --- Deadlock: cycle in one kernel's waiter -> holder edges.
        for (slave, snapshot) in snapshots.iter().enumerate() {
            if !is_dirty(slave) {
                continue;
            }
            if !self.reported_deadlock.contains(slave) {
                if let Some(cycle) = find_cycle(&snapshot.wait_edges) {
                    self.reported_deadlock.insert(slave);
                    bugs.push(self.make_bug(
                        BugKind::Deadlock { cycle },
                        CoreId::slave(slave),
                        sys,
                        committer,
                        snapshot,
                    ));
                }
            }
        }
        // --- Cross-core deadlock: cycle spanning kernels through the
        //     registered semaphore hand-off links. The wait graph only
        //     changes when some kernel changes, so with every kernel
        //     clean the search is skipped — unless the committer-done
        //     gate just opened, which enables the rule on its own.
        let any_dirty = dirty.is_none_or(|d| d.iter().any(|&x| x));
        let gate_opened = committer_done != self.last_done;
        self.last_done = committer_done;
        if committer_done && !self.reported_cross_core && (any_dirty || gate_opened) {
            if let Some(cycle) = find_cross_core_cycle(sys, snapshots) {
                self.reported_cross_core = true;
                let first_core = cycle[0].0;
                let snapshot = &snapshots[first_core.slave_index().unwrap_or(0)];
                bugs.push(self.make_bug(
                    BugKind::CrossCoreDeadlock { cycle },
                    first_core,
                    sys,
                    committer,
                    snapshot,
                ));
            }
        }
        // --- Progress accounting for starvation/livelock, per slave.
        let mut any_live = false;
        let mut stalled = std::mem::take(&mut self.stalled_scratch);
        let mut moving = std::mem::take(&mut self.moving_scratch);
        stalled.clear();
        moving.clear();
        for (slave, snapshot) in snapshots.iter().enumerate() {
            for t in &snapshot.tasks {
                if matches!(t.state, TaskState::Terminated(_)) {
                    self.progress.remove(&(slave, t.id));
                    continue;
                }
                any_live = true;
                let entry = self.progress.entry((slave, t.id)).or_insert(Progress {
                    ops: t.ops_retired,
                    since: now,
                });
                if t.ops_retired != entry.ops {
                    entry.ops = t.ops_retired;
                    entry.since = now;
                    moving.push((slave, t.id));
                } else if now.since(entry.since) >= self.cfg.progress_window {
                    let runnable = matches!(t.state, TaskState::Ready) && !t.suspended;
                    // Suspended tasks are intentionally parked by TS: not a bug.
                    if !t.suspended {
                        stalled.push((slave, t.id, runnable));
                    }
                }
            }
        }
        if committer_done {
            let done_since = *self.done_since.get_or_insert(now);
            for &(slave, task, runnable) in &stalled {
                if self.reported_starvation.insert(slave, task) {
                    bugs.push(self.make_bug(
                        BugKind::Starvation { task, runnable },
                        CoreId::slave(slave),
                        sys,
                        committer,
                        &snapshots[slave],
                    ));
                }
            }
            // Livelock / no termination: live tasks still spinning a full
            // window after the whole pattern was delivered (Figure 1).
            // Reported once per slave so multi-slave spinners stay
            // attributable to their kernel.
            if any_live && now.since(done_since) >= self.cfg.progress_window {
                for (slave, snapshot) in snapshots.iter().enumerate() {
                    if self.reported_livelock.contains(slave) {
                        continue;
                    }
                    let tasks: Vec<TaskId> = moving
                        .iter()
                        .filter(|(s, _)| *s == slave)
                        .map(|&(_, t)| t)
                        .collect();
                    if tasks.is_empty() {
                        continue;
                    }
                    self.reported_livelock.insert(slave);
                    bugs.push(self.make_bug(
                        BugKind::Livelock { tasks },
                        CoreId::slave(slave),
                        sys,
                        committer,
                        snapshot,
                    ));
                }
            }
        }
        self.stalled_scratch = stalled;
        self.moving_scratch = moving;
        bugs
    }
}

/// Finds a cycle in the waiter→holder graph, if any, returning the tasks
/// on it in order, canonicalized to start at the smallest task id (so
/// reproduced runs report byte-identical cycles).
fn find_cycle(edges: &[WaitEdge]) -> Option<Vec<TaskId>> {
    // waiter -> holder adjacency (mutex edges only; semaphores have no
    // holder). BTreeMap keeps the search order deterministic.
    let mut next: std::collections::BTreeMap<TaskId, TaskId> = std::collections::BTreeMap::new();
    for e in edges {
        if let Some(holder) = e.holder {
            next.insert(e.waiter, holder);
        }
    }
    for &start in next.keys() {
        let mut seen = vec![start];
        let mut cur = start;
        while let Some(&n) = next.get(&cur) {
            if let Some(pos) = seen.iter().position(|&t| t == n) {
                let mut cycle = seen[pos..].to_vec();
                // Canonical rotation: smallest task id first.
                let min_pos = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| **t)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(min_pos);
                return Some(cycle);
            }
            seen.push(n);
            cur = n;
            if seen.len() > edges.len() + 2 {
                break;
            }
        }
    }
    None
}

/// Finds a wait-for cycle spanning kernels.
///
/// A slave is *stuck* when it has at least one live task and every live
/// task is blocked (not suspended — a suspended task can be resumed by
/// the master, and not sleeping — sleepers wake on their own). A stuck
/// slave `s` *depends on* slave `t` when some blocked task of `s` waits
/// on a semaphore that is the inbox of a hand-off link fed from `t`:
/// only `t`'s progress could produce the token. A cycle among stuck
/// slaves is a deadlock no local scheduler decision can resolve; the
/// reported cycle lists, per slave in cycle order, the blocked task
/// waiting on the cross-core inbox.
fn find_cross_core_cycle(
    sys: &MultiCoreSystem,
    snapshots: &[KernelSnapshot],
) -> Option<Vec<(CoreId, TaskId)>> {
    let links = sys.sem_links();
    if links.is_empty() {
        return None;
    }
    let stuck: Vec<bool> = snapshots
        .iter()
        .map(|snap| {
            let mut live = 0usize;
            let all_blocked = snap.tasks.iter().all(|t| match t.state {
                TaskState::Terminated(_) => true,
                TaskState::Blocked(reason) => {
                    if t.suspended || matches!(reason, ptest_pcore::WaitReason::Sleep { .. }) {
                        false
                    } else {
                        live += 1;
                        true
                    }
                }
                _ => false,
            });
            all_blocked && live > 0
        })
        .collect();
    // slave -> (feeder slave, the waiting task): deterministic by
    // ascending slave order, first blocked waiter wins.
    let mut depends: std::collections::BTreeMap<usize, (usize, TaskId)> =
        std::collections::BTreeMap::new();
    for (slave, snap) in snapshots.iter().enumerate() {
        if !stuck[slave] {
            continue;
        }
        'edges: for e in &snap.wait_edges {
            if let ptest_pcore::ResourceRef::Semaphore(sem) = e.resource {
                for link in links {
                    if link.to_slave == slave && link.to_sem == sem && stuck[link.from_slave] {
                        depends.entry(slave).or_insert((link.from_slave, e.waiter));
                        continue 'edges;
                    }
                }
            }
        }
    }
    // Walk the slave-level dependency graph for a cycle.
    for &start in depends.keys() {
        let mut seen: Vec<usize> = vec![start];
        let mut cur = start;
        while let Some(&(next_slave, _)) = depends.get(&cur) {
            if let Some(pos) = seen.iter().position(|&s| s == next_slave) {
                let cycle_slaves = &seen[pos..];
                // Canonical rotation: smallest slave index first.
                let min_pos = cycle_slaves
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| **s)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let mut ordered: Vec<usize> = cycle_slaves.to_vec();
                ordered.rotate_left(min_pos);
                return Some(
                    ordered
                        .into_iter()
                        .map(|s| (CoreId::slave(s), depends[&s].1))
                        .collect(),
                );
            }
            seen.push(next_slave);
            cur = next_slave;
            if seen.len() > depends.len() + 1 {
                break;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{MutexId, ResourceRef};

    fn edge(w: u8, h: u8, m: u16) -> WaitEdge {
        WaitEdge {
            waiter: TaskId::new(w),
            resource: ResourceRef::Mutex(MutexId(m)),
            holder: Some(TaskId::new(h)),
        }
    }

    #[test]
    fn slave_sets_dedup_in_constant_time() {
        let mut s = SlaveSet::default();
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(70), "second word allocates on demand");
        assert!(s.contains(70));
        assert!(!s.contains(1));
        assert!(!s.contains(500));
        let mut ts = SlaveTaskSet::default();
        assert!(ts.insert(0, TaskId::new(5)));
        assert!(!ts.insert(0, TaskId::new(5)));
        assert!(ts.insert(1, TaskId::new(5)), "keyed by slave too");
        assert!(ts.insert(0, TaskId::new(200)), "full u8 task range");
        assert!(!ts.insert(0, TaskId::new(200)));
    }

    #[test]
    fn two_cycle_detected() {
        let cycle = find_cycle(&[edge(0, 1, 0), edge(1, 0, 1)]).unwrap();
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn three_cycle_detected() {
        let cycle = find_cycle(&[edge(0, 1, 0), edge(1, 2, 1), edge(2, 0, 2)]).unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        assert_eq!(find_cycle(&[edge(0, 1, 0), edge(1, 2, 1)]), None);
        assert_eq!(find_cycle(&[]), None);
    }

    #[test]
    fn self_cycle_detected() {
        // Cannot normally occur (recursive lock faults the task), but the
        // detector must not loop forever on it.
        let cycle = find_cycle(&[edge(5, 5, 0)]).unwrap();
        assert_eq!(cycle, vec![TaskId::new(5)]);
    }

    #[test]
    fn partial_cycle_with_tail_detected() {
        // 9 -> 0 -> 1 -> 2 -> 0 : cycle is (0 1 2).
        let cycle = find_cycle(&[edge(9, 0, 3), edge(0, 1, 0), edge(1, 2, 1), edge(2, 0, 2)]);
        let cycle = cycle.unwrap();
        assert_eq!(cycle.len(), 3);
        assert!(!cycle.contains(&TaskId::new(9)));
    }

    #[test]
    fn cycle_is_canonicalized_to_smallest_first() {
        let cycle = find_cycle(&[edge(2, 0, 0), edge(0, 1, 1), edge(1, 2, 2)]).unwrap();
        assert_eq!(
            cycle[0],
            TaskId::new(0),
            "rotation starts at min id: {cycle:?}"
        );
    }

    #[test]
    fn cross_core_display_names_cores() {
        let kind = BugKind::CrossCoreDeadlock {
            cycle: vec![
                (CoreId::Slave(0), TaskId::new(0)),
                (CoreId::Slave(1), TaskId::new(0)),
            ],
        };
        assert_eq!(
            kind.to_string(),
            "cross-core deadlock cycle: DSP:T0 -> DSP1:T0"
        );
    }

    mod live_system {
        use super::super::*;
        use ptest_master::{DualCoreSystem, MultiCoreSystem, SnapshotCache, SystemConfig};
        use ptest_pcore::{Op, Priority, Program, SvcRequest};

        fn spin_system() -> DualCoreSystem {
            let mut sys = DualCoreSystem::new(SystemConfig::default());
            let spin = sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Jump(0)]).unwrap());
            sys.kernel_mut()
                .dispatch(
                    SvcRequest::Create {
                        program: spin,
                        priority: Priority::new(5),
                        stack_bytes: None,
                    },
                    Cycles::ZERO,
                )
                .unwrap();
            sys
        }

        fn observe_window(
            sys: &mut DualCoreSystem,
            det: &mut BugDetector,
            cycles: u64,
            done: bool,
        ) -> Vec<Bug> {
            let mut all = Vec::new();
            for i in 0..cycles {
                sys.step();
                if i % 200 == 0 {
                    all.extend(det.observe(sys, None, done));
                }
            }
            all
        }

        #[test]
        fn livelock_reported_exactly_once() {
            let mut sys = spin_system();
            let mut det = BugDetector::new(DetectorConfig {
                progress_window: Cycles::new(2_000),
                ..DetectorConfig::default()
            });
            let bugs = observe_window(&mut sys, &mut det, 30_000, true);
            let livelocks = bugs
                .iter()
                .filter(|b| matches!(b.kind, BugKind::Livelock { .. }))
                .count();
            assert_eq!(livelocks, 1, "anomalies are reported once: {bugs:?}");
        }

        #[test]
        fn no_progress_rules_gated_until_committer_done() {
            let mut sys = spin_system();
            let mut det = BugDetector::new(DetectorConfig {
                progress_window: Cycles::new(2_000),
                ..DetectorConfig::default()
            });
            let bugs = observe_window(&mut sys, &mut det, 30_000, false);
            assert!(
                bugs.is_empty(),
                "while commands are in flight, spinning tasks are expected: {bugs:?}"
            );
        }

        #[test]
        fn suspended_tasks_are_not_reported_starved() {
            let mut sys = spin_system();
            sys.kernel_mut()
                .dispatch(
                    SvcRequest::Suspend {
                        task: ptest_pcore::TaskId::new(0),
                    },
                    Cycles::ZERO,
                )
                .unwrap();
            let mut det = BugDetector::new(DetectorConfig {
                progress_window: Cycles::new(2_000),
                ..DetectorConfig::default()
            });
            let bugs = observe_window(&mut sys, &mut det, 30_000, true);
            assert!(
                bugs.is_empty(),
                "TS-parked tasks are intentional, not starved: {bugs:?}"
            );
        }

        #[test]
        fn crash_reported_once_with_snapshot() {
            let mut cfg = SystemConfig::default();
            cfg.kernel.heap_bytes = 500; // TCB fits, the 512 B stack cannot
            let mut sys = DualCoreSystem::new(cfg);
            let prog = sys
                .kernel_mut()
                .register_program(Program::exit_immediately());
            // Issue the fatal create through the bridge.
            sys.issue(SvcRequest::Create {
                program: prog,
                priority: Priority::new(1),
                stack_bytes: None,
            })
            .unwrap();
            let mut det = BugDetector::new(DetectorConfig::default());
            let bugs = observe_window(&mut sys, &mut det, 5_000, false);
            let crashes: Vec<&Bug> = bugs
                .iter()
                .filter(|b| matches!(b.kind, BugKind::SlaveCrash { .. }))
                .collect();
            assert_eq!(crashes.len(), 1);
            assert!(crashes[0].snapshot.panic.is_some());
            assert!(!crashes[0].trace_tail.is_empty());
            assert_eq!(crashes[0].core, CoreId::Dsp);
        }

        /// Two slaves, two crossed hand-off rings, tokens placed so the
        /// stages block on each other: the canonical cross-core deadlock.
        fn crossed_handoff_system() -> MultiCoreSystem {
            let mut sys = MultiCoreSystem::new(SystemConfig::with_slaves(2));
            // Forward ring: 0 -> 1; backward ring: 1 -> 0.
            let f_out0 = sys.kernel_of_mut(0).create_semaphore(0);
            let f_in1 = sys.kernel_of_mut(1).create_semaphore(0);
            let b_out1 = sys.kernel_of_mut(1).create_semaphore(0);
            // Stage 0 already consumed the forward token (initial credit),
            // so stage 1 waits forward while stage 0 waits backward.
            let b_in0 = sys.kernel_of_mut(0).create_semaphore(0);
            sys.link_semaphores(0, f_out0, 1, f_in1).unwrap();
            sys.link_semaphores(1, b_out1, 0, b_in0).unwrap();
            let stage0 = sys.kernel_of_mut(0).register_program(
                Program::new(vec![Op::SemWait(b_in0), Op::SemPost(f_out0), Op::Exit]).unwrap(),
            );
            let stage1 = sys.kernel_of_mut(1).register_program(
                Program::new(vec![Op::SemWait(f_in1), Op::SemPost(b_out1), Op::Exit]).unwrap(),
            );
            for (slave, prog) in [(0usize, stage0), (1usize, stage1)] {
                sys.issue_to(
                    slave,
                    SvcRequest::Create {
                        program: prog,
                        priority: Priority::new(5),
                        stack_bytes: None,
                    },
                )
                .unwrap();
            }
            sys
        }

        #[test]
        fn cross_core_deadlock_detected_with_cycle_spanning_kernels() {
            let mut sys = crossed_handoff_system();
            sys.run(500);
            let mut det = BugDetector::new(DetectorConfig::default());
            let bugs = det.observe(&sys, None, true);
            let cross: Vec<&Bug> = bugs
                .iter()
                .filter(|b| matches!(b.kind, BugKind::CrossCoreDeadlock { .. }))
                .collect();
            assert_eq!(cross.len(), 1, "{bugs:?}");
            let BugKind::CrossCoreDeadlock { cycle } = &cross[0].kind else {
                unreachable!()
            };
            let cores: std::collections::BTreeSet<CoreId> = cycle.iter().map(|(c, _)| *c).collect();
            assert!(cores.len() >= 2, "cycle must span kernels: {cycle:?}");
            // Reported once.
            assert!(det.observe(&sys, None, true).is_empty());
        }

        #[test]
        fn cross_core_detection_gated_until_committer_done() {
            let mut sys = crossed_handoff_system();
            sys.run(500);
            let mut det = BugDetector::new(DetectorConfig::default());
            assert!(
                det.observe(&sys, None, false).is_empty(),
                "an in-flight create could still resolve the wait"
            );
        }

        #[test]
        fn cached_observation_matches_uncached() {
            let mut sys = spin_system();
            let mut plain = BugDetector::new(DetectorConfig {
                progress_window: Cycles::new(2_000),
                ..DetectorConfig::default()
            });
            let mut cached = plain.clone();
            let mut cache = SnapshotCache::new();
            let mut a = Vec::new();
            let mut b = Vec::new();
            for i in 0..30_000u64 {
                sys.step();
                if i % 200 == 0 {
                    a.extend(plain.observe(&sys, None, true));
                    b.extend(cached.observe_cached(&sys, None, true, &mut cache));
                }
            }
            assert!(!a.is_empty());
            let plain_lines: Vec<String> = a.iter().map(ToString::to_string).collect();
            let cached_lines: Vec<String> = b.iter().map(ToString::to_string).collect();
            assert_eq!(plain_lines, cached_lines);
        }

        #[test]
        fn cross_core_rule_runs_when_gate_opens_on_clean_kernels() {
            let mut sys = crossed_handoff_system();
            sys.run(500);
            let mut det = BugDetector::new(DetectorConfig::default());
            let mut cache = SnapshotCache::new();
            assert!(det.observe_cached(&sys, None, false, &mut cache).is_empty());
            // Every task is blocked: further cycles leave all kernels
            // clean, so only the committer-done flip enables the rule.
            sys.run(100);
            let bugs = det.observe_cached(&sys, None, true, &mut cache);
            assert!(
                bugs.iter()
                    .any(|b| matches!(b.kind, BugKind::CrossCoreDeadlock { .. })),
                "{bugs:?}"
            );
        }
    }
}
