//! The bug detector (paper §II-B): monitors test progress, detects
//! failures, and dumps reproduction information.
//!
//! Detection rules, mapped to the paper's criteria ("if processes do not
//! terminate or stay in the same state for a period of time, the system
//! may contain synchronization anomalies"):
//!
//! * **Slave crash** — the kernel panicked (observed through the debug
//!   window) or commands time out against a silent slave.
//! * **Deadlock** — a cycle in the wait-for graph (`waiter → holder`
//!   edges over mutexes).
//! * **Starvation** — a live task whose instruction counter has not moved
//!   for a whole observation window: either runnable-but-never-scheduled
//!   (CPU starvation under a spinning higher-priority task) or blocked
//!   forever on a resource nobody posts.
//! * **Livelock / no termination** — tasks that keep retiring
//!   instructions but never terminate after the committer has delivered
//!   the whole pattern (Figure 1's spin loops).
//! * **Task fault** — a task killed by the kernel (stack overflow, bad
//!   free, …), surfaced from exit records.

use std::collections::HashMap;
use std::fmt;

use ptest_master::DualCoreSystem;
use ptest_pcore::{ExitKind, KernelPanic, KernelSnapshot, TaskFault, TaskId, TaskState, WaitEdge};
use ptest_soc::Cycles;

use crate::committer::Committer;
use crate::record::StateRecord;

/// Configuration of the bug detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// A command unanswered for this long indicates a crashed/wedged
    /// slave.
    pub command_timeout: Cycles,
    /// Observation window for the no-progress rules.
    pub progress_window: Cycles,
    /// How many trailing kernel-trace events to embed in bug reports.
    pub trace_tail: usize,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            command_timeout: Cycles::new(50_000),
            progress_window: Cycles::new(20_000),
            trace_tail: 64,
        }
    }
}

/// The kind of anomaly detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BugKind {
    /// The slave kernel died.
    SlaveCrash {
        /// The kernel's fatal condition.
        panic: KernelPanic,
    },
    /// Commands outstanding past the timeout against a silent slave.
    CommandTimeout {
        /// Number of overdue commands.
        overdue: usize,
    },
    /// A cycle in the wait-for graph.
    Deadlock {
        /// The tasks forming the cycle, in cycle order.
        cycle: Vec<TaskId>,
    },
    /// A task made no progress for a whole window.
    Starvation {
        /// The starved task.
        task: TaskId,
        /// Whether it was runnable (CPU starvation) or blocked (resource
        /// starvation).
        runnable: bool,
    },
    /// Tasks keep running but never terminate after the test pattern
    /// completed.
    Livelock {
        /// The non-terminating tasks.
        tasks: Vec<TaskId>,
    },
    /// A task was killed by a kernel-detected fault.
    TaskFault {
        /// The faulted task.
        task: TaskId,
        /// The fault.
        fault: TaskFault,
    },
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::SlaveCrash { panic } => write!(f, "slave crash: {panic}"),
            BugKind::CommandTimeout { overdue } => {
                write!(f, "command timeout: {overdue} commands unanswered")
            }
            BugKind::Deadlock { cycle } => {
                let names: Vec<String> = cycle.iter().map(ToString::to_string).collect();
                write!(f, "deadlock cycle: {}", names.join(" -> "))
            }
            BugKind::Starvation { task, runnable } => {
                let how = if *runnable { "runnable" } else { "blocked" };
                write!(f, "starvation: {task} made no progress while {how}")
            }
            BugKind::Livelock { tasks } => {
                let names: Vec<String> = tasks.iter().map(ToString::to_string).collect();
                write!(f, "livelock/no-termination: {}", names.join(", "))
            }
            BugKind::TaskFault { task, fault } => write!(f, "task fault: {task} {fault}"),
        }
    }
}

/// A detected bug, with everything needed to reproduce it (the paper's
/// "dumps the related information to help users reproduce the bugs").
#[derive(Debug, Clone)]
pub struct Bug {
    /// What was detected.
    pub kind: BugKind,
    /// Virtual time of detection.
    pub detected_at: Cycles,
    /// Kernel snapshot at detection.
    pub snapshot: KernelSnapshot,
    /// Definition-2 state records of every controlled process.
    pub state_records: Vec<StateRecord>,
    /// Tail of the kernel trace.
    pub trace_tail: Vec<String>,
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.detected_at, self.kind)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Progress {
    ops: u64,
    since: Cycles,
}

/// The bug detector. Runs as an independent observer (the paper forks it
/// as a child process); here it is polled with
/// [`BugDetector::observe`] at a configurable cadence.
#[derive(Debug, Clone)]
pub struct BugDetector {
    cfg: DetectorConfig,
    progress: HashMap<TaskId, Progress>,
    reported_faults: Vec<TaskId>,
    reported_deadlock: bool,
    reported_crash: bool,
    reported_timeout: bool,
    reported_livelock: bool,
    reported_starvation: Vec<TaskId>,
    /// Virtual time at which the committer was first observed done.
    done_since: Option<Cycles>,
}

impl BugDetector {
    /// Creates a detector.
    #[must_use]
    pub fn new(cfg: DetectorConfig) -> BugDetector {
        BugDetector {
            cfg,
            progress: HashMap::new(),
            reported_faults: Vec::new(),
            reported_deadlock: false,
            reported_crash: false,
            reported_timeout: false,
            reported_livelock: false,
            reported_starvation: Vec::new(),
            done_since: None,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    fn make_bug(
        &self,
        kind: BugKind,
        sys: &DualCoreSystem,
        committer: Option<&Committer>,
        snapshot: &KernelSnapshot,
    ) -> Bug {
        Bug {
            kind,
            detected_at: sys.now(),
            snapshot: snapshot.clone(),
            state_records: committer.map(|c| c.state_records(sys)).unwrap_or_default(),
            trace_tail: sys
                .kernel()
                .trace()
                .tail(self.cfg.trace_tail)
                .iter()
                .map(ToString::to_string)
                .collect(),
        }
    }

    /// Observes the system once, returning any *newly* detected bugs
    /// (each anomaly is reported once).
    ///
    /// `committer_done` gates the no-progress rules: while commands are
    /// still being delivered, long-running tasks are expected, so only
    /// crash/timeout/deadlock/fault detection is active.
    pub fn observe(
        &mut self,
        sys: &DualCoreSystem,
        committer: Option<&Committer>,
        committer_done: bool,
    ) -> Vec<Bug> {
        let snapshot = sys.snapshot();
        let now = sys.now();
        let mut bugs = Vec::new();

        // --- Crash (debug window).
        if let Some(panic) = snapshot.panic {
            if !self.reported_crash {
                self.reported_crash = true;
                bugs.push(self.make_bug(BugKind::SlaveCrash { panic }, sys, committer, &snapshot));
            }
        }
        // --- Crash (timeout path: silent slave).
        let overdue = sys.overdue(self.cfg.command_timeout);
        if !overdue.is_empty() && !self.reported_timeout {
            self.reported_timeout = true;
            bugs.push(self.make_bug(
                BugKind::CommandTimeout {
                    overdue: overdue.len(),
                },
                sys,
                committer,
                &snapshot,
            ));
        }
        // --- Task faults.
        for t in &snapshot.tasks {
            if let TaskState::Terminated(ExitKind::Faulted(fault)) = t.state {
                if !self.reported_faults.contains(&t.id) {
                    self.reported_faults.push(t.id);
                    bugs.push(self.make_bug(
                        BugKind::TaskFault { task: t.id, fault },
                        sys,
                        committer,
                        &snapshot,
                    ));
                }
            }
        }
        // --- Deadlock: cycle in waiter -> holder edges.
        if !self.reported_deadlock {
            if let Some(cycle) = find_cycle(&snapshot.wait_edges) {
                self.reported_deadlock = true;
                bugs.push(self.make_bug(BugKind::Deadlock { cycle }, sys, committer, &snapshot));
            }
        }
        // --- Progress accounting for starvation/livelock.
        let mut any_live = false;
        let mut stalled: Vec<(TaskId, bool)> = Vec::new();
        let mut moving: Vec<TaskId> = Vec::new();
        for t in &snapshot.tasks {
            if matches!(t.state, TaskState::Terminated(_)) {
                self.progress.remove(&t.id);
                continue;
            }
            any_live = true;
            let entry = self.progress.entry(t.id).or_insert(Progress {
                ops: t.ops_retired,
                since: now,
            });
            if t.ops_retired != entry.ops {
                entry.ops = t.ops_retired;
                entry.since = now;
                moving.push(t.id);
            } else if now.since(entry.since) >= self.cfg.progress_window {
                let runnable = matches!(t.state, TaskState::Ready) && !t.suspended;
                // Suspended tasks are intentionally parked by TS: not a bug.
                if !t.suspended {
                    stalled.push((t.id, runnable));
                }
            }
        }
        if committer_done {
            let done_since = *self.done_since.get_or_insert(now);
            for (task, runnable) in stalled {
                if !self.reported_starvation.contains(&task) {
                    self.reported_starvation.push(task);
                    bugs.push(self.make_bug(
                        BugKind::Starvation { task, runnable },
                        sys,
                        committer,
                        &snapshot,
                    ));
                }
            }
            // Livelock / no termination: live tasks still spinning a full
            // window after the whole pattern was delivered (Figure 1).
            if any_live
                && !moving.is_empty()
                && !self.reported_livelock
                && now.since(done_since) >= self.cfg.progress_window
            {
                self.reported_livelock = true;
                bugs.push(self.make_bug(
                    BugKind::Livelock { tasks: moving },
                    sys,
                    committer,
                    &snapshot,
                ));
            }
        }
        bugs
    }
}

/// Finds a cycle in the waiter→holder graph, if any, returning the tasks
/// on it in order, canonicalized to start at the smallest task id (so
/// reproduced runs report byte-identical cycles).
fn find_cycle(edges: &[WaitEdge]) -> Option<Vec<TaskId>> {
    // waiter -> holder adjacency (mutex edges only; semaphores have no
    // holder). BTreeMap keeps the search order deterministic.
    let mut next: std::collections::BTreeMap<TaskId, TaskId> = std::collections::BTreeMap::new();
    for e in edges {
        if let Some(holder) = e.holder {
            next.insert(e.waiter, holder);
        }
    }
    for &start in next.keys() {
        let mut seen = vec![start];
        let mut cur = start;
        while let Some(&n) = next.get(&cur) {
            if let Some(pos) = seen.iter().position(|&t| t == n) {
                let mut cycle = seen[pos..].to_vec();
                // Canonical rotation: smallest task id first.
                let min_pos = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, t)| **t)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                cycle.rotate_left(min_pos);
                return Some(cycle);
            }
            seen.push(n);
            cur = n;
            if seen.len() > edges.len() + 2 {
                break;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{MutexId, ResourceRef};

    fn edge(w: u8, h: u8, m: u16) -> WaitEdge {
        WaitEdge {
            waiter: TaskId::new(w),
            resource: ResourceRef::Mutex(MutexId(m)),
            holder: Some(TaskId::new(h)),
        }
    }

    #[test]
    fn two_cycle_detected() {
        let cycle = find_cycle(&[edge(0, 1, 0), edge(1, 0, 1)]).unwrap();
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn three_cycle_detected() {
        let cycle = find_cycle(&[edge(0, 1, 0), edge(1, 2, 1), edge(2, 0, 2)]).unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        assert_eq!(find_cycle(&[edge(0, 1, 0), edge(1, 2, 1)]), None);
        assert_eq!(find_cycle(&[]), None);
    }

    #[test]
    fn self_cycle_detected() {
        // Cannot normally occur (recursive lock faults the task), but the
        // detector must not loop forever on it.
        let cycle = find_cycle(&[edge(5, 5, 0)]).unwrap();
        assert_eq!(cycle, vec![TaskId::new(5)]);
    }

    #[test]
    fn partial_cycle_with_tail_detected() {
        // 9 -> 0 -> 1 -> 2 -> 0 : cycle is (0 1 2).
        let cycle = find_cycle(&[edge(9, 0, 3), edge(0, 1, 0), edge(1, 2, 1), edge(2, 0, 2)]);
        let cycle = cycle.unwrap();
        assert_eq!(cycle.len(), 3);
        assert!(!cycle.contains(&TaskId::new(9)));
    }

    #[test]
    fn cycle_is_canonicalized_to_smallest_first() {
        let cycle = find_cycle(&[edge(2, 0, 0), edge(0, 1, 1), edge(1, 2, 2)]).unwrap();
        assert_eq!(
            cycle[0],
            TaskId::new(0),
            "rotation starts at min id: {cycle:?}"
        );
    }

    mod live_system {
        use super::super::*;
        use ptest_master::{DualCoreSystem, SystemConfig};
        use ptest_pcore::{Op, Priority, Program, SvcRequest};

        fn spin_system() -> DualCoreSystem {
            let mut sys = DualCoreSystem::new(SystemConfig::default());
            let spin = sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Jump(0)]).unwrap());
            sys.kernel_mut()
                .dispatch(
                    SvcRequest::Create {
                        program: spin,
                        priority: Priority::new(5),
                        stack_bytes: None,
                    },
                    Cycles::ZERO,
                )
                .unwrap();
            sys
        }

        fn observe_window(
            sys: &mut DualCoreSystem,
            det: &mut BugDetector,
            cycles: u64,
            done: bool,
        ) -> Vec<Bug> {
            let mut all = Vec::new();
            for i in 0..cycles {
                sys.step();
                if i % 200 == 0 {
                    all.extend(det.observe(sys, None, done));
                }
            }
            all
        }

        #[test]
        fn livelock_reported_exactly_once() {
            let mut sys = spin_system();
            let mut det = BugDetector::new(DetectorConfig {
                progress_window: Cycles::new(2_000),
                ..DetectorConfig::default()
            });
            let bugs = observe_window(&mut sys, &mut det, 30_000, true);
            let livelocks = bugs
                .iter()
                .filter(|b| matches!(b.kind, BugKind::Livelock { .. }))
                .count();
            assert_eq!(livelocks, 1, "anomalies are reported once: {bugs:?}");
        }

        #[test]
        fn no_progress_rules_gated_until_committer_done() {
            let mut sys = spin_system();
            let mut det = BugDetector::new(DetectorConfig {
                progress_window: Cycles::new(2_000),
                ..DetectorConfig::default()
            });
            let bugs = observe_window(&mut sys, &mut det, 30_000, false);
            assert!(
                bugs.is_empty(),
                "while commands are in flight, spinning tasks are expected: {bugs:?}"
            );
        }

        #[test]
        fn suspended_tasks_are_not_reported_starved() {
            let mut sys = spin_system();
            sys.kernel_mut()
                .dispatch(
                    SvcRequest::Suspend {
                        task: ptest_pcore::TaskId::new(0),
                    },
                    Cycles::ZERO,
                )
                .unwrap();
            let mut det = BugDetector::new(DetectorConfig {
                progress_window: Cycles::new(2_000),
                ..DetectorConfig::default()
            });
            let bugs = observe_window(&mut sys, &mut det, 30_000, true);
            assert!(
                bugs.is_empty(),
                "TS-parked tasks are intentional, not starved: {bugs:?}"
            );
        }

        #[test]
        fn crash_reported_once_with_snapshot() {
            let mut cfg = SystemConfig::default();
            cfg.kernel.heap_bytes = 500; // TCB fits, the 512 B stack cannot
            let mut sys = DualCoreSystem::new(cfg);
            let prog = sys
                .kernel_mut()
                .register_program(Program::exit_immediately());
            // Issue the fatal create through the bridge.
            sys.issue(SvcRequest::Create {
                program: prog,
                priority: Priority::new(1),
                stack_bytes: None,
            })
            .unwrap();
            let mut det = BugDetector::new(DetectorConfig::default());
            let bugs = observe_window(&mut sys, &mut det, 5_000, false);
            let crashes: Vec<&Bug> = bugs
                .iter()
                .filter(|b| matches!(b.kind, BugKind::SlaveCrash { .. }))
                .collect();
            assert_eq!(crashes.len(), 1);
            assert!(crashes[0].snapshot.panic.is_some());
            assert!(!crashes[0].trace_tail.is_empty());
        }
    }
}
