//! The committer (paper §II-B): issues the merged test pattern as remote
//! commands to the slave system and records execution status.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use ptest_automata::{Alphabet, Sym};
use ptest_bridge::CmdId;
use ptest_master::MultiCoreSystem;
use ptest_pcore::{Priority, ProgramId, Service, SvcError, SvcReply, SvcRequest, TaskId};
use ptest_soc::{CoreId, Cycles};

use crate::pattern::MergedPattern;
use crate::record::{MasterState, StateRecord};

/// Configuration of the committer.
#[derive(Debug, Clone)]
pub struct CommitterConfig {
    /// How long a command may remain unanswered before the committer
    /// declares a timeout (the crash-detection path).
    pub response_timeout: Cycles,
    /// The slave program each pattern's `task_create` starts (cycled if
    /// fewer programs than patterns).
    pub programs: Vec<ProgramId>,
    /// Stack size for created tasks (`None` = kernel default; the paper's
    /// stress test uses 512 bytes).
    pub stack_bytes: Option<u32>,
    /// Width of the per-pattern priority band; pattern `i` draws its
    /// unique priorities from `[1 + i·band, band + i·band]`.
    pub priority_band: u8,
    /// Cycles the master waits between completing one command and issuing
    /// the next, modelling the Linux-side latency of the real bridge (a
    /// remote command on the OMAP costs far more than one DSP cycle).
    /// Without pacing, an entire merged pattern executes before the slave
    /// tasks run a single instruction.
    pub inter_command_gap: u64,
}

impl Default for CommitterConfig {
    fn default() -> CommitterConfig {
        CommitterConfig {
            response_timeout: Cycles::new(50_000),
            programs: Vec::new(),
            stack_bytes: None,
            priority_band: 15,
            inter_command_gap: 16,
        }
    }
}

/// Error constructing a committer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitterError {
    /// A pattern symbol is not one of the Table I services.
    UnknownService {
        /// The symbol's rendered name.
        symbol: String,
    },
    /// No slave programs were configured for `task_create`.
    NoPrograms,
    /// Too many patterns for the priority space
    /// (`patterns × priority_band` must stay below 255).
    TooManyPatterns {
        /// Patterns requested.
        patterns: usize,
        /// Maximum supported with the configured band.
        max: usize,
    },
}

impl fmt::Display for CommitterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitterError::UnknownService { symbol } => {
                write!(f, "pattern symbol `{symbol}` is not a pCore service")
            }
            CommitterError::NoPrograms => write!(f, "committer needs at least one slave program"),
            CommitterError::TooManyPatterns { patterns, max } => {
                write!(
                    f,
                    "{patterns} patterns exceed the priority space (max {max})"
                )
            }
        }
    }
}

impl std::error::Error for CommitterError {}

/// Progress status of the committer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitterStatus {
    /// Still issuing/awaiting commands.
    Running,
    /// Every step of the merged pattern has completed.
    Done,
    /// A command exceeded the response timeout (silent slave).
    TimedOut {
        /// The unanswered command.
        cmd: CmdId,
    },
    /// The slave reported a kernel panic.
    SlaveCrashed,
}

/// The execution record of one merged-pattern step.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRecord {
    /// Position in the merged pattern.
    pub step_index: usize,
    /// Source pattern index.
    pub pattern: usize,
    /// The service this step encodes.
    pub service: Service,
    /// The concrete request issued (`None` if the step was skipped).
    pub request: Option<SvcRequest>,
    /// The slave's answer (`None` while in flight or skipped).
    pub result: Option<Result<SvcReply, SvcError>>,
    /// Issue time.
    pub issued_at: Option<Cycles>,
    /// Completion time.
    pub completed_at: Option<Cycles>,
    /// `true` if the step could not be issued (e.g. no bound task because
    /// an earlier `task_create` failed) and was recorded as skipped.
    pub skipped: bool,
}

/// The committer: a resumable state machine stepped once per system
/// cycle. It issues one command at a time and waits for its response
/// before the next step, so the slaves observe services in exactly the
/// merged order — the property that makes the pattern merger "act as a
/// scheduler".
///
/// On an N-slave [`MultiCoreSystem`], pattern `i`'s commands are routed
/// to slave `i mod N` ([`Committer::slave_of`]), so a merged pattern
/// exercises cross-core interleavings; on the dual-core platform
/// (`N = 1`) everything targets slave 0 exactly as before.
#[derive(Debug, Clone)]
pub struct Committer {
    merged: MergedPattern,
    cfg: CommitterConfig,
    service_of: HashMap<Sym, Service>,
    pos: usize,
    bound: Vec<Option<TaskId>>,
    prio_counter: Vec<u8>,
    progress: Vec<usize>,
    /// Per-pattern symbol projections, interned so every state record of
    /// a pattern shares one allocation instead of cloning the buffer.
    pattern_syms: Vec<Arc<[Sym]>>,
    last_completed: Vec<Option<Service>>,
    awaiting: Option<(CmdId, usize, Cycles)>,
    /// Earliest time the next command may be issued (pacing).
    next_issue_at: Cycles,
    records: Vec<ExecRecord>,
    status: CommitterStatus,
    commands_issued: u64,
    error_replies: u64,
    skipped_steps: u64,
}

impl Committer {
    /// Builds a committer for a merged pattern.
    ///
    /// # Errors
    ///
    /// [`CommitterError`] if the pattern uses non-service symbols, no
    /// programs are configured, or the priority space is exceeded.
    pub fn new(
        merged: MergedPattern,
        alphabet: &Alphabet,
        cfg: CommitterConfig,
    ) -> Result<Committer, CommitterError> {
        if cfg.programs.is_empty() {
            return Err(CommitterError::NoPrograms);
        }
        let n_patterns = merged
            .steps()
            .iter()
            .map(|s| s.pattern + 1)
            .max()
            .unwrap_or(0);
        let band = cfg.priority_band.max(1);
        let max = (255 / band) as usize;
        if n_patterns > max {
            return Err(CommitterError::TooManyPatterns {
                patterns: n_patterns,
                max,
            });
        }
        let mut service_of = HashMap::new();
        for step in merged.steps() {
            if let std::collections::hash_map::Entry::Vacant(e) = service_of.entry(step.sym) {
                let name = alphabet.name(step.sym).unwrap_or("?");
                let svc: Service = name.parse().map_err(|_| CommitterError::UnknownService {
                    symbol: name.to_owned(),
                })?;
                e.insert(svc);
            }
        }
        let records = merged
            .steps()
            .iter()
            .enumerate()
            .map(|(i, s)| ExecRecord {
                step_index: i,
                pattern: s.pattern,
                service: service_of[&s.sym],
                request: None,
                result: None,
                issued_at: None,
                completed_at: None,
                skipped: false,
            })
            .collect();
        let pattern_syms = (0..n_patterns).map(|i| merged.project(i).into()).collect();
        Ok(Committer {
            cfg,
            service_of,
            pos: 0,
            bound: vec![None; n_patterns],
            prio_counter: vec![0; n_patterns],
            progress: vec![0; n_patterns],
            pattern_syms,
            last_completed: vec![None; n_patterns],
            awaiting: None,
            next_issue_at: Cycles::ZERO,
            records,
            status: CommitterStatus::Running,
            commands_issued: 0,
            error_replies: 0,
            skipped_steps: 0,
            merged,
        })
    }

    /// Current status.
    #[must_use]
    pub fn status(&self) -> CommitterStatus {
        self.status
    }

    /// Whether the committer has reached a terminal status.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.status != CommitterStatus::Running
    }

    /// Commands issued so far.
    #[must_use]
    pub fn commands_issued(&self) -> u64 {
        self.commands_issued
    }

    /// Error replies received so far.
    #[must_use]
    pub fn error_replies(&self) -> u64 {
        self.error_replies
    }

    /// Steps skipped (no bound task).
    #[must_use]
    pub fn skipped_steps(&self) -> u64 {
        self.skipped_steps
    }

    /// The per-step execution records.
    #[must_use]
    pub fn records(&self) -> &[ExecRecord] {
        &self.records
    }

    /// The merged pattern being executed.
    #[must_use]
    pub fn merged(&self) -> &MergedPattern {
        &self.merged
    }

    /// The slave task currently bound to pattern `i`.
    #[must_use]
    pub fn bound_task(&self, pattern: usize) -> Option<TaskId> {
        self.bound.get(pattern).copied().flatten()
    }

    /// The slave core pattern `pattern`'s commands are routed to on a
    /// system with `slave_count` slaves: `pattern mod slave_count`.
    #[must_use]
    pub fn slave_of(pattern: usize, slave_count: usize) -> usize {
        pattern % slave_count.max(1)
    }

    fn base_priority(&self, pattern: usize) -> u8 {
        1 + (pattern as u8) * self.cfg.priority_band
    }

    fn next_priority(&mut self, pattern: usize) -> Priority {
        let band = self.cfg.priority_band.max(1);
        let offset = self.prio_counter[pattern] % band;
        self.prio_counter[pattern] = self.prio_counter[pattern].wrapping_add(1);
        Priority::new(self.base_priority(pattern) + offset)
    }

    /// Advances the committer by (at most) one action: consume a pending
    /// response, time out, or issue the next command. Call once per
    /// system cycle after [`MultiCoreSystem::step`].
    pub fn step(&mut self, sys: &mut MultiCoreSystem) -> CommitterStatus {
        if self.status != CommitterStatus::Running {
            return self.status;
        }
        // 1. Consume responses (draining in place keeps the system's
        //    inbox buffer alive across cycles — no per-step allocation).
        for resp in sys.drain_responses() {
            let Some((awaited, step_idx, _)) = self.awaiting else {
                continue; // late response after timeout handling
            };
            if resp.id != awaited {
                continue;
            }
            let pattern = self.records[step_idx].pattern;
            self.records[step_idx].result = Some(resp.result);
            self.records[step_idx].completed_at = Some(resp.completed_at);
            self.progress[pattern] += 1;
            self.last_completed[pattern] = Some(self.records[step_idx].service);
            match &resp.result {
                Ok(SvcReply::Created(task)) => {
                    self.bound[pattern] = Some(*task);
                }
                Ok(_) => {
                    if matches!(
                        self.records[step_idx].service,
                        Service::Delete | Service::Yield
                    ) {
                        self.bound[pattern] = None;
                    }
                }
                Err(SvcError::KernelPanicked) => {
                    self.error_replies += 1;
                    self.status = CommitterStatus::SlaveCrashed;
                    self.awaiting = None;
                    return self.status;
                }
                Err(_) => {
                    self.error_replies += 1;
                    // A failed create leaves the pattern unbound; later
                    // steps of the lifecycle will be skipped.
                }
            }
            self.awaiting = None;
            self.next_issue_at = resp
                .completed_at
                .checked_add(Cycles::new(self.cfg.inter_command_gap))
                .unwrap_or(resp.completed_at);
        }
        // 2. Timeout?
        if let Some((cmd, _, issued_at)) = self.awaiting {
            if sys.now().since(issued_at) > self.cfg.response_timeout {
                self.status = CommitterStatus::TimedOut { cmd };
            }
            return self.status;
        }
        // 3. Issue the next step (respecting the pacing gap).
        if self.pos >= self.merged.len() {
            self.status = CommitterStatus::Done;
            return self.status;
        }
        if sys.now() < self.next_issue_at {
            return self.status;
        }
        let step_idx = self.pos;
        let pattern = self.records[step_idx].pattern;
        let service = self.records[step_idx].service;
        let request = match service {
            Service::Create => {
                let program = self.cfg.programs[pattern % self.cfg.programs.len()];
                let priority = self.next_priority(pattern);
                Some(SvcRequest::Create {
                    program,
                    priority,
                    stack_bytes: self.cfg.stack_bytes,
                })
            }
            Service::Delete => self.bound[pattern].map(|task| SvcRequest::Delete { task }),
            Service::Suspend => self.bound[pattern].map(|task| SvcRequest::Suspend { task }),
            Service::Resume => self.bound[pattern].map(|task| SvcRequest::Resume { task }),
            Service::ChangePriority => {
                if let Some(task) = self.bound[pattern] {
                    let priority = self.next_priority(pattern);
                    Some(SvcRequest::ChangePriority { task, priority })
                } else {
                    None
                }
            }
            Service::Yield => self.bound[pattern].map(|task| SvcRequest::Yield { task }),
        };
        let Some(request) = request else {
            // No bound task (an earlier create failed): record a skip.
            self.records[step_idx].skipped = true;
            self.skipped_steps += 1;
            self.progress[pattern] += 1;
            self.pos += 1;
            return self.status;
        };
        let slave = Committer::slave_of(pattern, sys.slave_count());
        match sys.issue_to(slave, request) {
            Ok(cmd) => {
                self.records[step_idx].request = Some(request);
                self.records[step_idx].issued_at = Some(sys.now());
                self.awaiting = Some((cmd, step_idx, sys.now()));
                self.commands_issued += 1;
                self.pos += 1;
            }
            Err(_) => { /* command ring full: retry next cycle */ }
        }
        self.status
    }

    /// The earliest cycle at which this committer can next *act* on its
    /// own clock, given the current cycle `now` — the committer's
    /// contribution to the event-driven trial loop's fast-forward
    /// horizon. `None` means the committer is terminal and will never
    /// act again (no upper bound on skipping).
    ///
    /// Response arrivals are deliberately *not* modelled here: a
    /// response needs in-flight bridge traffic, which already
    /// disqualifies fast-forwarding at the system level
    /// ([`MultiCoreSystem::quiescent_horizon`]). What remains are the
    /// committer's two self-timed events: declaring a response timeout
    /// (`issued_at + response_timeout + 1`, the first cycle
    /// `now.since(issued_at) > response_timeout` holds) and issuing the
    /// next command once the pacing gap expires (`next_issue_at`).
    #[must_use]
    pub fn next_event_cycle(&self, now: Cycles) -> Option<u64> {
        if self.status != CommitterStatus::Running {
            return None;
        }
        if let Some((_, _, issued_at)) = self.awaiting {
            return Some(issued_at.get() + self.cfg.response_timeout.get() + 1);
        }
        if self.pos >= self.merged.len() {
            // The next `step` flips to `Done`; don't skip over it.
            return Some(now.get() + 1);
        }
        // A full command ring can defer an issue past `next_issue_at`;
        // never skip while an issue is (or may be) pending.
        Some(self.next_issue_at.get().max(now.get() + 1))
    }

    /// The Definition-2 state record of pattern `i` (see Figure 4).
    #[must_use]
    pub fn state_record(&self, pattern: usize, sys: &MultiCoreSystem) -> Option<StateRecord> {
        let syms = self.pattern_syms.get(pattern)?.clone();
        let master_state = if let Some((_, step_idx, _)) = self.awaiting {
            if self.records[step_idx].pattern == pattern {
                MasterState::AwaitingResponse(self.records[step_idx].service)
            } else {
                self.idle_master_state(pattern, &syms)
            }
        } else {
            self.idle_master_state(pattern, &syms)
        };
        let slave = Committer::slave_of(pattern, sys.slave_count());
        let slave_task = self.bound[pattern];
        let slave_state = slave_task.and_then(|t| sys.kernel_of(slave).task_state(t));
        Some(StateRecord {
            pattern_index: pattern,
            slave_core: CoreId::slave(slave),
            master_state,
            slave_task,
            slave_state,
            test_pattern: syms,
            sequence_number: self.progress[pattern],
        })
    }

    fn idle_master_state(&self, pattern: usize, syms: &[Sym]) -> MasterState {
        if self.progress[pattern] >= syms.len() {
            MasterState::Finished
        } else if let Some(svc) = self.last_completed[pattern] {
            MasterState::Issuing(svc)
        } else {
            MasterState::Idle
        }
    }

    /// State records for every pattern (the dump the bug detector writes
    /// into bug reports).
    #[must_use]
    pub fn state_records(&self, sys: &MultiCoreSystem) -> Vec<StateRecord> {
        (0..self.pattern_syms.len())
            .filter_map(|i| self.state_record(i, sys))
            .collect()
    }

    /// The set of services used by a pattern symbol, for coverage
    /// accounting.
    #[must_use]
    pub fn service_of(&self, sym: Sym) -> Option<Service> {
        self.service_of.get(&sym).copied()
    }

    /// Consumes the committer, handing the merged pattern and per-step
    /// execution records to the report without cloning either — the
    /// trial engine's assembly path.
    #[must_use]
    pub fn into_parts(self) -> (MergedPattern, Vec<ExecRecord>) {
        (self.merged, self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::PatternGenerator;
    use crate::merger::{MergeOp, PatternMerger};
    use ptest_automata::GenerateOptions;
    use ptest_master::{DualCoreSystem, SystemConfig};
    use ptest_pcore::Program;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_to_completion(
        sys: &mut DualCoreSystem,
        committer: &mut Committer,
        max: u64,
    ) -> CommitterStatus {
        for _ in 0..max {
            sys.step();
            let status = committer.step(sys);
            if status != CommitterStatus::Running {
                return status;
            }
        }
        CommitterStatus::Running
    }

    fn setup(n: usize, s: usize, op: MergeOp, seed: u64) -> (DualCoreSystem, Committer) {
        let mut sys = DualCoreSystem::new(SystemConfig::default());
        let prog = sys.kernel_mut().register_program(
            Program::new(vec![ptest_pcore::Op::Compute(30), ptest_pcore::Op::Exit]).unwrap(),
        );
        let generator = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns = generator.generate_batch(&mut rng, n, GenerateOptions::sized(s));
        let merged = PatternMerger::new().merge(&patterns, op);
        let committer = Committer::new(
            merged,
            generator.regex().alphabet(),
            CommitterConfig {
                programs: vec![prog],
                ..CommitterConfig::default()
            },
        )
        .unwrap();
        (sys, committer)
    }

    #[test]
    fn executes_full_merged_pattern() {
        let (mut sys, mut committer) = setup(3, 8, MergeOp::cyclic(), 1);
        let status = run_to_completion(&mut sys, &mut committer, 2_000_000);
        assert_eq!(status, CommitterStatus::Done);
        assert!(committer.commands_issued() > 0);
        // Every non-skipped record has a result.
        for r in committer.records() {
            assert!(r.skipped || r.result.is_some(), "unresolved step {r:?}");
        }
    }

    #[test]
    fn create_binds_and_terminal_unbinds() {
        let (mut sys, mut committer) = setup(1, 6, MergeOp::Sequential, 2);
        // A sized pattern may stop mid-lifecycle (Algorithm 2 emits at
        // most `s` services); the binding must reflect whether the last
        // executed service was terminal.
        let ends_terminal = committer
            .records()
            .last()
            .is_some_and(|r| r.service.is_terminal());
        let status = run_to_completion(&mut sys, &mut committer, 2_000_000);
        assert_eq!(status, CommitterStatus::Done);
        if ends_terminal {
            assert_eq!(committer.bound_task(0), None, "TD/TY must unbind");
        } else {
            assert!(
                committer.bound_task(0).is_some(),
                "open lifecycle stays bound"
            );
        }
    }

    #[test]
    fn slave_order_matches_merged_order() {
        // Because the committer awaits each response, the kernel services
        // execute in exactly merged order; verify via kernel svc counter.
        let (mut sys, mut committer) = setup(2, 6, MergeOp::cyclic(), 3);
        let total_steps = committer.merged().len() as u64;
        let skipped_expected = 0;
        let status = run_to_completion(&mut sys, &mut committer, 2_000_000);
        assert_eq!(status, CommitterStatus::Done);
        assert_eq!(committer.skipped_steps(), skipped_expected);
        assert_eq!(sys.snapshot().svc_count, total_steps);
    }

    #[test]
    fn state_records_have_fig4_fields() {
        let (mut sys, mut committer) = setup(2, 6, MergeOp::cyclic(), 4);
        // Run partially.
        for _ in 0..200 {
            sys.step();
            committer.step(&mut sys);
        }
        let records = committer.state_records(&sys);
        assert_eq!(records.len(), 2);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.pattern_index, i);
            // Sized generation may absorb before reaching s = 6 services.
            assert!(!r.test_pattern.is_empty() && r.test_pattern.len() <= 6);
            assert!(r.sequence_number <= r.test_pattern.len());
        }
        run_to_completion(&mut sys, &mut committer, 2_000_000);
        let records = committer.state_records(&sys);
        for r in &records {
            assert_eq!(r.master_state, MasterState::Finished);
            assert!(r.remaining().is_empty());
        }
    }

    #[test]
    fn rejects_unknown_symbols() {
        let mut alphabet = Alphabet::new();
        let bogus = alphabet.intern("NOT_A_SERVICE");
        let merged = MergedPattern::new(vec![crate::pattern::MergedStep {
            pattern: 0,
            sym: bogus,
        }]);
        let err = Committer::new(
            merged,
            &alphabet,
            CommitterConfig {
                programs: vec![ProgramId(0)],
                ..CommitterConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CommitterError::UnknownService { .. }));
    }

    #[test]
    fn rejects_empty_program_list() {
        let merged = MergedPattern::default();
        let err = Committer::new(merged, &Alphabet::new(), CommitterConfig::default()).unwrap_err();
        assert_eq!(err, CommitterError::NoPrograms);
    }

    #[test]
    fn priority_bands_stay_disjoint() {
        let (mut sys, mut committer) = setup(4, 10, MergeOp::cyclic(), 5);
        let status = run_to_completion(&mut sys, &mut committer, 3_000_000);
        assert_eq!(status, CommitterStatus::Done);
        // No PriorityInUse errors may have occurred.
        for r in committer.records() {
            if let Some(Err(e)) = &r.result {
                assert!(
                    !matches!(e, SvcError::PriorityInUse(_)),
                    "band collision: {r:?}"
                );
            }
        }
    }

    #[test]
    fn crash_surfaces_as_slave_crashed() {
        let mut cfg = SystemConfig::default();
        cfg.kernel.heap_bytes = 2 * 1024;
        cfg.kernel.gc_fault = ptest_pcore::GcFaultMode::LeakDeadBlocks { leak_every: 1 };
        let mut sys = DualCoreSystem::new(cfg);
        let prog = sys
            .kernel_mut()
            .register_program(Program::exit_immediately());
        let generator = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        // Heavy churn: one pattern with many lifecycles.
        let patterns = generator.generate_batch(&mut rng, 1, GenerateOptions::cyclic(400));
        let merged = PatternMerger::new().merge(&patterns, MergeOp::Sequential);
        let mut committer = Committer::new(
            merged,
            generator.regex().alphabet(),
            CommitterConfig {
                programs: vec![prog],
                ..CommitterConfig::default()
            },
        )
        .unwrap();
        let status = run_to_completion(&mut sys, &mut committer, 5_000_000);
        assert!(
            matches!(
                status,
                CommitterStatus::SlaveCrashed | CommitterStatus::TimedOut { .. }
            ),
            "leaky GC under churn must kill the slave: {status:?}"
        );
        assert!(sys.slave_crashed());
    }
}
