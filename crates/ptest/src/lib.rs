//! # ptest — adaptive stress testing of concurrent software on simulated
//! # embedded multicore processors
//!
//! This is the facade crate of the pTest reproduction (Chang, Hsieh, Lee,
//! *pTest: An Adaptive Testing Tool for Concurrent Software on Embedded
//! Multicore Processors*, DATE 2009). It re-exports the whole stack:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | tool | [`core`](mod@crate::core) | pattern generator (PFA), pattern merger, committer, bug detector, Algorithm 1 |
//! | automata | [`automata`] | regex → NFA → DFA → PFA pipeline, distribution learning |
//! | baselines | [`baselines`] | ConTest-style random and CHESS-style systematic testers |
//! | faults | [`faults`] | Figure 1, dining philosophers, GC-churn stress, starvation/inversion/races |
//! | master | [`master`] | master runtime, the wired [`DualCoreSystem`] |
//! | bridge | [`bridge`] | pCore-Bridge middleware (SRAM rings + mailbox doorbells) |
//! | slave | [`pcore`] | the pCore microkernel simulator |
//! | hardware | [`soc`] | the OMAP5912-like simulated SoC |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Quick start
//!
//! ```
//! use ptest::{AdaptiveTest, AdaptiveTestConfig};
//! use ptest::pcore::{Op, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = AdaptiveTest::run(AdaptiveTestConfig::default(), |sys| {
//!     vec![sys.kernel_mut().register_program(
//!         Program::new(vec![Op::Compute(20), Op::Exit]).expect("valid program"),
//!     )]
//! })?;
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```
//!
//! ## Reproducing the paper's case studies
//!
//! ```no_run
//! use ptest::{AdaptiveTest, BugKind};
//! use ptest::faults::stress::{stress_config, stress_setup, StressSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Case study 1: 16 quick-sorting tasks over a heap with a leaky GC.
//! let spec = StressSpec::paper(1);
//! let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec))?;
//! assert!(report.found(|k| matches!(k, BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. })));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ptest_automata as automata;
pub use ptest_baselines as baselines;
pub use ptest_bridge as bridge;
pub use ptest_core as core;
pub use ptest_faults as faults;
pub use ptest_master as master;
pub use ptest_pcore as pcore;
pub use ptest_soc as soc;

pub use ptest_automata::{Alphabet, Dfa, GenerateOptions, Pfa, ProbabilityAssignment, Regex, Sym};
pub use ptest_core::{
    AdaptiveTest, AdaptiveTestConfig, Bug, BugDetector, BugKind, Committer, CommitterConfig,
    CommitterStatus, CoverageReport, DetectorConfig, MergeOp, MergedPattern, PatternGenerator,
    PatternMerger, StateRecord, TestPattern, TestReport,
};
pub use ptest_master::{DualCoreSystem, MasterOp, SystemConfig};
pub use ptest_pcore::{
    GcFaultMode, Kernel, KernelConfig, Priority, Program, ProgramBuilder, ProgramId, Service,
    SvcReply, SvcRequest, TaskId, TaskState,
};
pub use ptest_soc::Cycles;

/// Serializes a report's stable summary as pretty JSON — the format the
/// experiment harness archives and CI dashboards consume.
///
/// # Errors
///
/// Propagates `serde_json` errors (practically unreachable for this
/// data).
pub fn report_to_json(report: &TestReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&report.machine_summary())
}

/// Parses a summary back from JSON.
///
/// # Errors
///
/// `serde_json` errors on malformed input.
pub fn summary_from_json(json: &str) -> Result<core::ReportSummary, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use ptest_pcore::{Op, Program};

    #[test]
    fn facade_reexports_compile_together() {
        // Types from different layers interoperate through the facade.
        let cfg = crate::AdaptiveTestConfig::default();
        assert_eq!(cfg.n, 4);
        let re = crate::Regex::pcore_task_lifecycle();
        assert_eq!(re.alphabet().len(), 6);
    }

    #[test]
    fn json_roundtrip() {
        let report = crate::AdaptiveTest::run(
            crate::AdaptiveTestConfig {
                n: 2,
                s: 4,
                seed: 1,
                ..crate::AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(10), Op::Exit]).unwrap())]
            },
        )
        .unwrap();
        let json = crate::report_to_json(&report).unwrap();
        assert!(json.contains("\"commands_issued\""));
        let parsed = crate::summary_from_json(&json).unwrap();
        assert_eq!(parsed, report.machine_summary());
    }
}
