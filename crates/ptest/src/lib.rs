//! # ptest — adaptive stress testing of concurrent software on simulated
//! # embedded multicore processors
//!
//! This is the facade crate of the pTest reproduction (Chang, Hsieh, Lee,
//! *pTest: An Adaptive Testing Tool for Concurrent Software on Embedded
//! Multicore Processors*, DATE 2009). It re-exports the whole stack:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | campaign | [`campaign`] | parallel multi-trial engine with cross-trial distribution learning |
//! | tool | [`core`](mod@crate::core) | pattern generator (PFA), pattern merger, committer, bug detector, Algorithm 1 |
//! | automata | [`automata`] | regex → NFA → DFA → PFA pipeline, distribution learning |
//! | baselines | [`baselines`] | ConTest-style random and CHESS-style systematic testers |
//! | faults | [`faults`] | Figure 1, dining philosophers, GC-churn stress, starvation/inversion/races, multi-slave pipeline + SRAM race, schedule-sensitive cross-core races, memory-model-sensitive races (Dekker, IRIW), preemption-sensitive timer/ISR faults |
//! | master | [`master`] | master runtime, the wired N-slave [`MultiCoreSystem`] ([`DualCoreSystem`] = n 1), schedule exploration ([`ScheduleSpec`], [`RandomPriorityScheduler`]), memory-model exploration ([`MemoryModelSpec`], [`StoreBufferModel`]), preemption/interrupt exploration ([`PreemptionSpec`]: quantum slices, per-slave clock skew, seeded interrupt plans) |
//! | bridge | [`bridge`] | pCore-Bridge middleware (SRAM rings + mailbox doorbells) |
//! | slave | [`pcore`] | the pCore microkernel simulator |
//! | hardware | [`soc`] | the OMAP5912-like simulated SoC |
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Quick start
//!
//! ```
//! use ptest::{AdaptiveTest, AdaptiveTestConfig};
//! use ptest::pcore::{Op, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = AdaptiveTest::run(AdaptiveTestConfig::default(), |sys| {
//!     vec![sys.kernel_mut().register_program(
//!         Program::new(vec![Op::Compute(20), Op::Exit]).expect("valid program"),
//!     )]
//! })?;
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```
//!
//! ## Reproducing the paper's case studies
//!
//! ```no_run
//! use ptest::{AdaptiveTest, BugKind};
//! use ptest::faults::stress::{stress_config, stress_setup, StressSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Case study 1: 16 quick-sorting tasks over a heap with a leaky GC.
//! let spec = StressSpec::paper(1);
//! let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec))?;
//! assert!(report.found(|k| matches!(k, BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. })));
//! # Ok(())
//! # }
//! ```
//!
//! ## Running a campaign
//!
//! A [`Campaign`] fans many seeded trials of one [`Scenario`] across a
//! worker-thread pool and re-learns the probability distribution from
//! the trials' execution traces between rounds — the paper's adaptive
//! loop at fleet scale. Results are deterministic: the aggregate report
//! is a pure function of (scenario, configuration, master seed),
//! independent of worker count.
//!
//! ```
//! use ptest::campaign::{Campaign, CampaignConfig};
//! use ptest::faults::philosophers::PhilosophersScenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Campaign::run(
//!     &CampaignConfig { trials_per_round: 4, rounds: 2, workers: 2, ..CampaignConfig::default() },
//!     &PhilosophersScenario::buggy(),
//! )?;
//! println!("{}", report.summary());
//! println!("{}", ptest::campaign_report_to_json(&report)?);
//! # Ok(())
//! # }
//! ```
//!
//! Campaigns too large for one process or one sitting can be split
//! across machines ([`Campaign::run_shard`] /
//! [`Campaign::merge_shard_reports`] with a [`ShardSpec`]) and survive
//! kills ([`Campaign::run_with_checkpoint_file`], or
//! [`Campaign::run_until`] / [`Campaign::resume`] with a
//! [`CampaignCheckpoint`]) — in every case the final archive is
//! byte-identical to the uninterrupted, unsharded run's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ptest_automata as automata;
pub use ptest_baselines as baselines;
pub use ptest_bridge as bridge;
pub use ptest_campaign as campaign;
pub use ptest_core as core;
pub use ptest_faults as faults;
pub use ptest_master as master;
pub use ptest_pcore as pcore;
pub use ptest_soc as soc;

pub use ptest_automata::{Alphabet, Dfa, GenerateOptions, Pfa, ProbabilityAssignment, Regex, Sym};
pub use ptest_campaign::{
    config_fingerprint, Campaign, CampaignCheckpoint, CampaignConfig, CampaignReport,
    LearningConfig, MemoryDetection, MinimizedOutcome, PreemptionDetection, RoundReport,
    ScheduleDetection, ShardReport, ShardSpec, CHECKPOINT_SCHEMA,
};
pub use ptest_core::{
    derived_irq_seed, derived_memory_seed, derived_schedule_seed, minimize_scenario_trial,
    minimize_trial, replay_minimized, AdaptiveTest, AdaptiveTestConfig, Bug, BugDetector, BugKind,
    Committer, CommitterConfig, CommitterStatus, Configured, CoverageReport, DetectorConfig,
    FnScenario, InterleavingEvent, MergeOp, MergedPattern, MinimizeConfig, MinimizeError,
    MinimizedMemory, MinimizedRepro, MinimizedSchedule, PatternGenerator, PatternMerger,
    RootCauseReport, Scenario, StateRecord, TestPattern, TestReport, TrialEngine, TrialOverrides,
    TrialScratch, TrialTrace,
};
pub use ptest_master::{
    ClockSkewConfig, DualCoreSystem, InterruptConfig, LockStepScheduler, MasterOp, MemoryModel,
    MemoryModelSpec, MultiCoreSystem, PreemptionSpec, QuantumConfig, RandomPriorityConfig,
    RandomPriorityScheduler, ScheduleSpec, Scheduler, StoreBufferConfig, StoreBufferModel,
    SystemConfig,
};
pub use ptest_pcore::{
    GcFaultMode, Kernel, KernelConfig, Priority, Program, ProgramBuilder, ProgramId, Service,
    SvcReply, SvcRequest, TaskId, TaskState,
};
pub use ptest_soc::Cycles;

/// Serializes a report's stable summary as pretty JSON — the format the
/// experiment harness archives and CI dashboards consume.
///
/// # Errors
///
/// Propagates `serde_json` errors (practically unreachable for this
/// data).
pub fn report_to_json(report: &TestReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(&report.machine_summary())
}

/// Parses a summary back from JSON.
///
/// # Errors
///
/// `serde_json` errors on malformed input.
pub fn summary_from_json(json: &str) -> Result<core::ReportSummary, serde_json::Error> {
    serde_json::from_str(json)
}

/// Serializes a campaign's aggregate report as pretty JSON — the
/// per-round archive format the experiment binaries emit. Because the
/// report is a pure function of (scenario, configuration, master seed),
/// the JSON is byte-identical across worker counts; the determinism
/// property tests compare exactly these strings.
///
/// # Errors
///
/// Propagates `serde_json` errors (practically unreachable for this
/// data).
pub fn campaign_report_to_json(report: &CampaignReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(report)
}

/// Parses a campaign report back from JSON.
///
/// # Errors
///
/// `serde_json` errors on malformed input.
pub fn campaign_report_from_json(json: &str) -> Result<CampaignReport, serde_json::Error> {
    serde_json::from_str(json)
}

/// Serializes a campaign checkpoint as pretty JSON — the resumable
/// round-boundary snapshot format (see
/// [`Campaign::run_with_checkpoint_file`] for the file-based loop).
///
/// # Errors
///
/// Propagates `serde_json` errors (practically unreachable for this
/// data).
pub fn campaign_checkpoint_to_json(
    checkpoint: &CampaignCheckpoint,
) -> Result<String, serde_json::Error> {
    checkpoint.to_json()
}

/// Parses a campaign checkpoint back from JSON.
///
/// # Errors
///
/// `serde_json` errors on malformed input.
pub fn campaign_checkpoint_from_json(json: &str) -> Result<CampaignCheckpoint, serde_json::Error> {
    CampaignCheckpoint::from_json(json)
}

/// Serializes a minimized reproducer — shrunk patterns, schedule mask,
/// seeds and the root-cause interleaving report — as pretty JSON; the
/// artifact format CI uploads for every shrunk bug class.
///
/// # Errors
///
/// Propagates `serde_json` errors (practically unreachable for this
/// data).
pub fn minimized_repro_to_json(repro: &MinimizedRepro) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(repro)
}

/// Parses a minimized reproducer back from JSON — the input to
/// [`replay_minimized`].
///
/// # Errors
///
/// `serde_json` errors on malformed input.
pub fn minimized_repro_from_json(json: &str) -> Result<MinimizedRepro, serde_json::Error> {
    serde_json::from_str(json)
}

#[cfg(test)]
mod tests {
    use ptest_pcore::{Op, Program};

    #[test]
    fn facade_reexports_compile_together() {
        // Types from different layers interoperate through the facade.
        let cfg = crate::AdaptiveTestConfig::default();
        assert_eq!(cfg.n, 4);
        let re = crate::Regex::pcore_task_lifecycle();
        assert_eq!(re.alphabet().len(), 6);
    }

    #[test]
    fn campaign_json_roundtrip() {
        let scenario = crate::FnScenario::new(
            "compute",
            crate::AdaptiveTestConfig {
                n: 2,
                s: 4,
                ..crate::AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(10), Op::Exit]).unwrap())]
            },
        );
        let report = crate::Campaign::run(
            &crate::CampaignConfig {
                trials_per_round: 3,
                rounds: 2,
                workers: 2,
                ..crate::CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let json = crate::campaign_report_to_json(&report).unwrap();
        assert!(json.contains("\"trials_per_round\""));
        let parsed = crate::campaign_report_from_json(&json).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn json_roundtrip() {
        let report = crate::AdaptiveTest::run(
            crate::AdaptiveTestConfig {
                n: 2,
                s: 4,
                seed: 1,
                ..crate::AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(10), Op::Exit]).unwrap())]
            },
        )
        .unwrap();
        let json = crate::report_to_json(&report).unwrap();
        assert!(json.contains("\"commands_issued\""));
        let parsed = crate::summary_from_json(&json).unwrap();
        assert_eq!(parsed, report.machine_summary());
    }
}
