//! Campaign determinism properties: a campaign's aggregate report is a
//! pure function of (scenario, configuration, master seed) — the worker
//! count must never leak into results, learned distributions, or the
//! serialized JSON archive.

use proptest::prelude::*;
use ptest::pcore::{Op, Program};
use ptest::{
    AdaptiveTestConfig, Campaign, CampaignConfig, CampaignReport, DualCoreSystem, FnScenario,
    LearningConfig, MemoryModelSpec, MergeOp, ProgramId, RandomPriorityConfig, Scenario,
    ScheduleSpec, SystemConfig, TrialEngine, TrialScratch,
};

fn compute_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(15), Op::Exit]).expect("valid"))]
}

fn scenario_for(n: usize, s: usize, cyclic: bool, op: MergeOp) -> impl Scenario {
    FnScenario::new(
        "prop-compute",
        AdaptiveTestConfig {
            n,
            s,
            cyclic_generation: cyclic,
            op,
            ..AdaptiveTestConfig::default()
        },
        compute_setup,
    )
}

fn run(scenario: &dyn Scenario, cfg: &CampaignConfig) -> CampaignReport {
    Campaign::run(cfg, scenario).expect("valid campaign")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The satellite property of the campaign engine: for random
    /// configurations, 1-worker and 4-worker campaigns produce
    /// byte-identical aggregate JSON reports and identical learned
    /// distributions for the same master seed.
    #[test]
    fn one_and_four_workers_agree_byte_for_byte(
        n in 1usize..4,
        s in 2usize..8,
        trials in 2usize..6,
        rounds in 1usize..3,
        master_seed in 0u64..1_000,
        cyclic in 0u8..2,
        alpha in 0u8..3,
    ) {
        let scenario = scenario_for(n, s, cyclic == 1, MergeOp::cyclic());
        let cfg = |workers| CampaignConfig {
            trials_per_round: trials,
            rounds,
            workers,
            master_seed,
            learning: LearningConfig {
                enabled: true,
                alpha: f64::from(alpha) * 0.5,
                bug_biased: true,
            },
            ..CampaignConfig::default()
        };
        let one = run(&scenario, &cfg(1));
        let four = run(&scenario, &cfg(4));
        prop_assert_eq!(&one, &four, "aggregate reports must be identical");
        for (a, b) in one.rounds.iter().zip(four.rounds.iter()) {
            prop_assert_eq!(&a.learned, &b.learned, "learned distributions must match");
            prop_assert_eq!(&a.distribution, &b.distribution);
        }
        let json_one = ptest::campaign_report_to_json(&one).expect("serializes");
        let json_four = ptest::campaign_report_to_json(&four).expect("serializes");
        prop_assert_eq!(json_one, json_four, "JSON archives must be byte-identical");
    }

    /// Re-running the same campaign twice (same worker count) is also
    /// bit-stable: no hidden global state survives a run.
    #[test]
    fn campaigns_are_rerun_stable(
        n in 1usize..3,
        s in 2usize..6,
        master_seed in 0u64..1_000,
    ) {
        let scenario = scenario_for(n, s, false, MergeOp::cyclic());
        let cfg = CampaignConfig {
            trials_per_round: 3,
            rounds: 2,
            workers: 2,
            master_seed,
            learning: LearningConfig::default(),
            ..CampaignConfig::default()
        };
        let first = run(&scenario, &cfg);
        let second = run(&scenario, &cfg);
        prop_assert_eq!(first, second);
    }

    /// Seed-triple replay: under the randomized-priority scheduler and a
    /// memory-model rotation, a `(pattern_seed, schedule_seed,
    /// memory_seed)` triple reproduces a byte-identical trial trace —
    /// the campaign's aggregate JSON is worker-count independent, every
    /// outcome records its replay triple and model label, and replaying
    /// any recorded triple standalone regenerates that trial's summary
    /// byte for byte.
    #[test]
    fn seed_triple_replays_byte_identically_across_worker_counts(
        n in 1usize..3,
        s in 2usize..6,
        trials in 2usize..5,
        master_seed in 0u64..1_000,
        change_points in 0usize..5,
    ) {
        let spec = ScheduleSpec::RandomPriority(RandomPriorityConfig {
            change_points,
            ..RandomPriorityConfig::default()
        });
        let scenario = FnScenario::new(
            "prop-sched",
            AdaptiveTestConfig {
                n,
                s,
                schedule: spec,
                system: SystemConfig::with_slaves(2),
                ..AdaptiveTestConfig::default()
            },
            compute_setup,
        );
        let models = [MemoryModelSpec::SeqCst, MemoryModelSpec::store_buffer()];
        let cfg = |workers| CampaignConfig {
            trials_per_round: trials,
            rounds: 1,
            workers,
            master_seed,
            learning: LearningConfig::default(),
            memory_models: models.to_vec(),
            ..CampaignConfig::default()
        };
        let one = run(&scenario, &cfg(1));
        let four = run(&scenario, &cfg(4));
        prop_assert_eq!(
            ptest::campaign_report_to_json(&one).expect("serializes"),
            ptest::campaign_report_to_json(&four).expect("serializes"),
            "randomized schedules and memory rotations must stay worker-count independent"
        );
        // Every recorded (seed, schedule_seed, memory_seed) triple
        // replays its trial under the model the rotation assigned it.
        let engine = TrialEngine::new(scenario.base_config()).expect("compiles");
        let mut scratch = TrialScratch::new();
        for outcome in &one.rounds[0].trials {
            prop_assert_eq!(
                outcome.seed,
                ptest::campaign::trial_seed(master_seed, 0, outcome.trial)
            );
            prop_assert_eq!(
                outcome.schedule_seed,
                ptest::campaign::schedule_seed(master_seed, 0, outcome.trial)
            );
            prop_assert_eq!(
                outcome.memory_seed,
                ptest::campaign::memory_seed(master_seed, 0, outcome.trial)
            );
            let memory = models[outcome.trial % models.len()];
            prop_assert_eq!(&outcome.memory, &memory.label());
            let replay = engine
                .run_scenario_trial_explored_as(
                    &scenario,
                    outcome.seed,
                    outcome.schedule_seed,
                    outcome.memory_seed,
                    spec,
                    memory,
                    &mut scratch,
                )
                .expect("replays");
            prop_assert_eq!(&replay.machine_summary(), &outcome.summary);
        }
    }

    /// Different master seeds genuinely decorrelate trials: the derived
    /// seeds differ, so at least the generated trial summaries differ.
    #[test]
    fn master_seed_changes_trials(
        n in 2usize..4,
        master_seed in 0u64..1_000,
    ) {
        let scenario = scenario_for(n, 6, false, MergeOp::cyclic());
        let cfg = |seed| CampaignConfig {
            trials_per_round: 3,
            rounds: 1,
            workers: 2,
            master_seed: seed,
            learning: LearningConfig::default(),
            ..CampaignConfig::default()
        };
        let a = run(&scenario, &cfg(master_seed));
        let b = run(&scenario, &cfg(master_seed.wrapping_add(1)));
        let seeds_a: Vec<u64> = a.rounds[0].trials.iter().map(|t| t.seed).collect();
        let seeds_b: Vec<u64> = b.rounds[0].trials.iter().map(|t| t.seed).collect();
        prop_assert_ne!(seeds_a, seeds_b);
    }
}
