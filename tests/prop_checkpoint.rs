//! Checkpoint/resume and shard/merge determinism properties: killing a
//! campaign at any round boundary and resuming — at any worker count,
//! through JSON, or through the checkpoint file — must reproduce the
//! uninterrupted run's aggregate JSON byte for byte, and splitting a
//! round's seed space across shards and merging the shard reports must
//! reproduce the unsharded report byte for byte.

use proptest::prelude::*;
use ptest::pcore::{Op, Program};
use ptest::{
    AdaptiveTestConfig, Campaign, CampaignConfig, FnScenario, LearningConfig, ProgramId, Scenario,
    ShardSpec,
};

fn compute_setup(sys: &mut ptest::DualCoreSystem) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(15), Op::Exit]).expect("valid"))]
}

fn scenario_for(n: usize, s: usize) -> impl Scenario {
    FnScenario::new(
        "prop-checkpoint",
        AdaptiveTestConfig {
            n,
            s,
            ..AdaptiveTestConfig::default()
        },
        compute_setup,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill at every round boundary k, resume at a different worker
    /// count, and the final aggregate JSON is byte-identical to the
    /// uninterrupted run — including a JSON roundtrip of the checkpoint
    /// itself in the middle (what a real kill + restart would do).
    #[test]
    fn kill_and_resume_is_byte_identical_across_worker_counts(
        n in 1usize..3,
        s in 2usize..6,
        trials in 2usize..6,
        rounds in 1usize..4,
        master_seed in 0u64..1_000,
        checkpoint_workers in 1usize..5,
        resume_workers in 1usize..5,
    ) {
        let scenario = scenario_for(n, s);
        let cfg = |workers| CampaignConfig {
            trials_per_round: trials,
            rounds,
            workers,
            master_seed,
            learning: LearningConfig::default(),
            ..CampaignConfig::default()
        };
        let full = Campaign::run(&cfg(1), &scenario).expect("valid campaign");
        let full_json = ptest::campaign_report_to_json(&full).expect("serializes");
        for kill_after in 0..=rounds {
            let checkpoint =
                Campaign::run_until(&cfg(checkpoint_workers), &scenario, kill_after)
                    .expect("runs to the boundary");
            prop_assert_eq!(checkpoint.next_round, kill_after);
            let json = ptest::campaign_checkpoint_to_json(&checkpoint).expect("serializes");
            let reloaded = ptest::campaign_checkpoint_from_json(&json).expect("parses");
            prop_assert_eq!(&reloaded, &checkpoint, "checkpoint JSON roundtrip is lossless");
            let resumed = Campaign::resume(&cfg(resume_workers), &scenario, &reloaded)
                .expect("resumes");
            let resumed_json = ptest::campaign_report_to_json(&resumed).expect("serializes");
            prop_assert_eq!(
                &resumed_json,
                &full_json,
                "kill after round {} must not leak into the archive",
                kill_after
            );
        }
    }

    /// Splitting each round's trial range across any shard count and
    /// merging the shard reports reproduces the unsharded campaign's
    /// JSON byte for byte — independent of the worker count each shard
    /// ran at. Learning campaigns shard at one round (multi-round
    /// learning couples shards and is rejected, covered by unit tests).
    #[test]
    fn sharded_runs_merge_to_the_unsharded_archive(
        n in 1usize..3,
        s in 2usize..6,
        trials in 2usize..8,
        master_seed in 0u64..1_000,
        shards in 1usize..5,
        learning in 0u8..2,
        shard_workers in 1usize..4,
    ) {
        let learning_on = learning == 1;
        let scenario = scenario_for(n, s);
        let cfg = |workers| CampaignConfig {
            trials_per_round: trials,
            // Multi-round sharding requires learning off; one round
            // shards either way.
            rounds: if learning_on { 1 } else { 3 },
            workers,
            master_seed,
            learning: LearningConfig {
                enabled: learning_on,
                ..LearningConfig::default()
            },
            ..CampaignConfig::default()
        };
        let full = Campaign::run(&cfg(1), &scenario).expect("valid campaign");
        let full_json = ptest::campaign_report_to_json(&full).expect("serializes");
        let reports: Vec<_> = (0..shards)
            .map(|index| {
                Campaign::run_shard(
                    &cfg(shard_workers),
                    &scenario,
                    ShardSpec { index, of: shards },
                )
                .expect("shard runs")
            })
            .collect();
        // Merge accepts shards in any order; reverse to prove it.
        let merged =
            Campaign::merge_shard_reports(&cfg(1), &scenario, reports.into_iter().rev().collect())
                .expect("merges");
        let merged_json = ptest::campaign_report_to_json(&merged).expect("serializes");
        prop_assert_eq!(&merged_json, &full_json, "shard split must not leak into the archive");
    }

    /// The file-based checkpoint loop: a campaign interrupted after its
    /// first round (simulated by a partial `run_until` checkpoint left
    /// on disk) resumes from the file and finishes with the
    /// uninterrupted run's exact archive; a fresh run (no file) matches
    /// too, and leaves a completed checkpoint behind.
    #[test]
    fn checkpoint_files_resume_to_the_identical_archive(
        n in 1usize..3,
        trials in 2usize..5,
        rounds in 2usize..4,
        master_seed in 0u64..1_000,
    ) {
        let scenario = scenario_for(n, 4);
        let cfg = CampaignConfig {
            trials_per_round: trials,
            rounds,
            workers: 2,
            master_seed,
            learning: LearningConfig::default(),
            ..CampaignConfig::default()
        };
        let full = Campaign::run(&cfg, &scenario).expect("valid campaign");
        let full_json = ptest::campaign_report_to_json(&full).expect("serializes");

        let path = std::env::temp_dir().join(format!(
            "ptest-prop-checkpoint-{}-{n}-{trials}-{rounds}-{master_seed}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);

        // Fresh run: no file to resume from; one is left behind.
        let fresh = Campaign::run_with_checkpoint_file(&cfg, &scenario, &path)
            .expect("fresh checkpointed run");
        prop_assert_eq!(
            ptest::campaign_report_to_json(&fresh).expect("serializes"),
            full_json.clone()
        );
        let final_checkpoint = std::fs::read_to_string(&path).expect("file left on success");
        let parsed = ptest::campaign_checkpoint_from_json(&final_checkpoint).expect("parses");
        prop_assert_eq!(parsed.next_round, rounds);

        // Interrupted run: overwrite the file with a round-1 snapshot,
        // as if the process had been killed there, then resume from it.
        let partial = Campaign::run_until(&cfg, &scenario, 1).expect("partial run");
        std::fs::write(
            &path,
            ptest::campaign_checkpoint_to_json(&partial).expect("serializes"),
        )
        .expect("writes");
        let resumed = Campaign::run_with_checkpoint_file(&cfg, &scenario, &path)
            .expect("resumed checkpointed run");
        prop_assert_eq!(
            ptest::campaign_report_to_json(&resumed).expect("serializes"),
            full_json
        );
        let _ = std::fs::remove_file(&path);
    }
}
