//! Idle-cycle fast-forward equivalence: across a matrix of scenarios ×
//! schedulers × memory models, a fast-forwarded trial must produce a
//! `TestReport` that serializes **byte-for-byte identically** to a
//! forced cycle-by-cycle run of the same seeds.
//!
//! This is the contract that makes the event-driven trial loop safe to
//! ship: fast-forward is a pure latency optimisation, invisible in every
//! archived report — cycle counts, detection times, exec records, all of
//! it.

use ptest::faults::philosophers::PhilosophersScenario;
use ptest::master::{MemoryModelSpec, ScheduleSpec};
use ptest::pcore::{Op, Program, ProgramId};
use ptest::{
    derived_memory_seed, derived_schedule_seed, AdaptiveTestConfig, DualCoreSystem, FnScenario,
    Scenario, TrialEngine, TrialScratch,
};

/// A sleeper-dominated worker: short compute bursts separated by long
/// naps, so almost every platform cycle is idle — the workload
/// fast-forward compresses hardest.
fn sleeper_scenario() -> impl Scenario {
    FnScenario::new(
        "sleeper",
        AdaptiveTestConfig {
            n: 2,
            s: 4,
            ..AdaptiveTestConfig::default()
        },
        |sys: &mut DualCoreSystem| -> Vec<ProgramId> {
            let ops = vec![
                Op::Compute(5),
                Op::SleepFor(2_000),
                Op::Compute(5),
                Op::SleepFor(3_000),
                Op::Exit,
            ];
            vec![sys
                .kernel_mut()
                .register_program(Program::new(ops).expect("valid"))]
        },
    )
}

/// A busy compute worker: no idle windows at all, so fast-forward never
/// engages — the equivalence must hold trivially.
fn compute_scenario() -> impl Scenario {
    FnScenario::new(
        "compute",
        AdaptiveTestConfig {
            n: 3,
            s: 6,
            ..AdaptiveTestConfig::default()
        },
        |sys: &mut DualCoreSystem| -> Vec<ProgramId> {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(30), Op::Exit]).expect("valid"))]
        },
    )
}

fn explorations() -> Vec<(ScheduleSpec, MemoryModelSpec)> {
    vec![
        (ScheduleSpec::LockStep, MemoryModelSpec::SeqCst),
        (ScheduleSpec::LockStep, MemoryModelSpec::store_buffer()),
        (ScheduleSpec::random_priority(), MemoryModelSpec::SeqCst),
        (
            ScheduleSpec::random_priority(),
            MemoryModelSpec::store_buffer(),
        ),
    ]
}

/// Runs `scenario` across the (scheduler × memory model) matrix for a
/// handful of seeds, once fast-forwarded and once forced cycle-by-cycle,
/// asserting byte-identical report JSON.
fn assert_fast_forward_equivalence(scenario: &dyn Scenario) {
    for (schedule, memory) in explorations() {
        let mut cfg = scenario.base_config();
        cfg.schedule = schedule;
        cfg.memory = memory;
        let mut fast = TrialEngine::new(cfg.clone()).unwrap();
        fast.set_fast_forward(true);
        let mut slow = TrialEngine::new(cfg).unwrap();
        slow.set_fast_forward(false);
        let mut fast_scratch = TrialScratch::new();
        let mut slow_scratch = TrialScratch::new();
        for seed in 1..=3u64 {
            let schedule_seed = derived_schedule_seed(seed);
            let memory_seed = derived_memory_seed(seed);
            let a = fast
                .run_scenario_trial_explored(
                    scenario,
                    seed,
                    schedule_seed,
                    memory_seed,
                    &mut fast_scratch,
                )
                .unwrap();
            let b = slow
                .run_scenario_trial_explored(
                    scenario,
                    seed,
                    schedule_seed,
                    memory_seed,
                    &mut slow_scratch,
                )
                .unwrap();
            assert_eq!(
                ptest::report_to_json(&a).unwrap(),
                ptest::report_to_json(&b).unwrap(),
                "fast-forward changed report bytes: scenario={} seed={seed} \
                 schedule={schedule:?} memory={memory:?}",
                scenario.name(),
            );
        }
    }
}

#[test]
fn sleeper_reports_are_byte_identical_with_and_without_fast_forward() {
    assert_fast_forward_equivalence(&sleeper_scenario());
}

#[test]
fn compute_reports_are_byte_identical_with_and_without_fast_forward() {
    assert_fast_forward_equivalence(&compute_scenario());
}

#[test]
fn buggy_philosopher_reports_are_byte_identical_with_and_without_fast_forward() {
    // A real deadlock: the detector path and the fatal early-exit must
    // fire on exactly the same cycle either way.
    assert_fast_forward_equivalence(&PhilosophersScenario::buggy());
}

#[test]
fn env_escape_hatch_disables_fast_forward_at_engine_construction() {
    // Engines elsewhere in this binary set the flag explicitly, so the
    // temporary process-global variable cannot perturb them.
    std::env::set_var("PTEST_NO_FAST_FORWARD", "1");
    let gated = TrialEngine::new(AdaptiveTestConfig::default()).unwrap();
    std::env::remove_var("PTEST_NO_FAST_FORWARD");
    let default = TrialEngine::new(AdaptiveTestConfig::default()).unwrap();
    assert!(!gated.fast_forward_enabled());
    assert!(default.fast_forward_enabled());
}
