//! The N-slave generalization's no-regression anchor and multicore
//! acceptance tests.
//!
//! The golden fixtures under `tests/fixtures/` were captured from the
//! dual-core implementation *before* the `MultiCoreSystem` refactor: the
//! adaptive tool on a 1-slave system must keep producing byte-identical
//! `TestReport` JSON for the same seeds. On top of that anchor, the
//! multicore acceptance tests drive the cross-core pipeline scenario end
//! to end: the wait-for-graph detector must report a deadlock cycle
//! spanning kernels — a bug class that cannot exist with a single slave.

use ptest::faults::multicore::{CrossCorePipelineScenario, SramRaceScenario};
use ptest::faults::philosophers::PhilosophersScenario;
use ptest::master::MultiCoreSystem;
use ptest::pcore::{Op, Program};
use ptest::soc::CoreId;
use ptest::{AdaptiveTest, AdaptiveTestConfig, BugKind, DualCoreSystem, Scenario, SystemConfig};

const GOLDEN_COMPUTE: &str = include_str!("fixtures/golden_compute_seed42.json");
const GOLDEN_PHILOSOPHERS: &str = include_str!("fixtures/golden_philosophers_seed7.json");

fn compute_report(system: SystemConfig) -> ptest::TestReport {
    AdaptiveTest::run(
        AdaptiveTestConfig {
            n: 3,
            s: 6,
            seed: 42,
            system,
            ..AdaptiveTestConfig::default()
        },
        |sys| {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
        },
    )
    .unwrap()
}

/// The refactor's anchor: a 1-slave `MultiCoreSystem` run reproduces the
/// pre-refactor dual-core report byte for byte.
#[test]
fn n1_report_is_byte_identical_to_the_pre_refactor_golden() {
    let report = compute_report(SystemConfig::default());
    let json = ptest::report_to_json(&report).unwrap() + "\n";
    assert_eq!(json, GOLDEN_COMPUTE, "dual-core behaviour drifted");

    let philo = AdaptiveTest::run_scenario(&PhilosophersScenario::buggy(), 7).unwrap();
    let json = ptest::report_to_json(&philo).unwrap() + "\n";
    assert_eq!(
        json, GOLDEN_PHILOSOPHERS,
        "deadlock reporting drifted (cycle rendering or timing)"
    );
}

/// `DualCoreSystem` *is* the `n = 1` `MultiCoreSystem`: same type, same
/// default configuration, same behaviour.
#[test]
fn dual_core_system_is_the_n1_special_case() {
    assert_eq!(SystemConfig::default().slaves, 1);
    let dual = DualCoreSystem::new(SystemConfig::default());
    assert_eq!(dual.slave_count(), 1);
    // Explicit n=1 multicore and the dual-core path produce identical
    // reports.
    let a = compute_report(SystemConfig::default());
    let b = compute_report(SystemConfig::with_slaves(1));
    assert_eq!(
        ptest::report_to_json(&a).unwrap(),
        ptest::report_to_json(&b).unwrap()
    );
}

/// Acceptance: the 3-slave pipeline reveals a cross-core deadlock that
/// the wait-for-graph detector reports as a cycle spanning kernels, and
/// the bug reproduces from its seed.
#[test]
fn pipeline_scenario_reveals_a_cross_core_deadlock() {
    let scenario = CrossCorePipelineScenario::buggy();
    let mut hit = None;
    for seed in 0..10 {
        let report = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
        if report.found(|k| matches!(k, BugKind::CrossCoreDeadlock { .. })) {
            hit = Some((seed, report));
            break;
        }
    }
    let (seed, report) = hit.expect("a seed below 10 must close the cycle");
    let bug = report
        .bugs
        .iter()
        .find(|b| matches!(b.kind, BugKind::CrossCoreDeadlock { .. }))
        .unwrap();
    let BugKind::CrossCoreDeadlock { cycle } = &bug.kind else {
        unreachable!()
    };
    let cores: std::collections::BTreeSet<CoreId> = cycle.iter().map(|(c, _)| *c).collect();
    assert!(
        cores.len() >= 2,
        "the cycle must span at least two kernels: {cycle:?}"
    );
    // Reproduction: same seed, same scenario, same bug at the same time.
    let again = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
    let twin = again
        .bugs
        .iter()
        .find(|b| matches!(b.kind, BugKind::CrossCoreDeadlock { .. }))
        .expect("reproduction must find the same bug");
    assert_eq!(bug.kind, twin.kind);
    assert_eq!(bug.detected_at, twin.detected_at);
    // The state records carry the per-slave routing.
    assert!(bug
        .state_records
        .iter()
        .any(|r| r.slave_core != CoreId::Dsp));
}

/// The machine summary classifies the new bug kind distinctly.
#[test]
fn cross_core_deadlock_has_its_own_summary_class() {
    let scenario = CrossCorePipelineScenario::buggy();
    for seed in 0..10 {
        let report = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
        if report.found(|k| matches!(k, BugKind::CrossCoreDeadlock { .. })) {
            let summary = report.machine_summary();
            assert!(summary
                .bugs
                .iter()
                .any(|b| b.class == "cross_core_deadlock"));
            return;
        }
    }
    panic!("no seed revealed the deadlock");
}

/// Campaigns drive multi-slave scenarios unchanged (the Scenario carries
/// its slave count in its system configuration).
#[test]
fn campaigns_drive_multi_slave_scenarios_unchanged() {
    let report = ptest::Campaign::run(
        &ptest::CampaignConfig {
            trials_per_round: 4,
            rounds: 1,
            workers: 2,
            master_seed: 11,
            ..ptest::CampaignConfig::default()
        },
        &CrossCorePipelineScenario::buggy(),
    )
    .unwrap();
    assert_eq!(report.total_trials(), 4);
    // Determinism holds across worker counts for multi-slave systems too.
    let single = ptest::Campaign::run(
        &ptest::CampaignConfig {
            trials_per_round: 4,
            rounds: 1,
            workers: 1,
            master_seed: 11,
            ..ptest::CampaignConfig::default()
        },
        &CrossCorePipelineScenario::buggy(),
    )
    .unwrap();
    assert_eq!(
        ptest::campaign_report_to_json(&report).unwrap(),
        ptest::campaign_report_to_json(&single).unwrap()
    );
}

/// The SRAM race scenario wires through the scenario plumbing and its
/// oracle sees lost updates when driven directly.
#[test]
fn sram_race_scenario_is_campaign_ready() {
    let scenario = SramRaceScenario::default();
    let mut sys = MultiCoreSystem::new(scenario.base_config().system);
    let programs = scenario.setup(&mut sys);
    assert_eq!(programs.len(), 2);
    assert_eq!(sys.shared_vars().len(), 1);
    let report = AdaptiveTest::run_scenario(&scenario, 5).unwrap();
    assert!(report.commands_issued > 0);
    assert_eq!(report.ordering_errors(), 0);
}
