//! Integration tests of the paper's fault scenarios end to end.

use ptest::faults::fig1::{self, Fig1Order, Fig1Outcome, Fig1Scenario};
use ptest::faults::philosophers::{case2_config, setup, Variant};
use ptest::faults::scenarios;
use ptest::faults::stress::{stress_config, stress_setup, StressSpec};
use ptest::{AdaptiveTest, BugKind, Cycles, MergeOp, TaskState};

#[test]
fn fig1_outcome_depends_only_on_resume_order() {
    let good = fig1::run(Fig1Scenario {
        order: Fig1Order::S2First,
        ..Fig1Scenario::default()
    });
    let bad = fig1::run(Fig1Scenario::default());
    assert!(matches!(good, Fig1Outcome::Completed { .. }));
    assert!(matches!(bad, Fig1Outcome::Livelock { .. }));
}

#[test]
fn case1_crash_only_with_faulty_gc() {
    let faulty = StressSpec::paper(2);
    let healthy = StressSpec::healthy(2);
    let crash_pred = |k: &BugKind| {
        matches!(
            k,
            BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
        )
    };
    let r1 = AdaptiveTest::run(stress_config(&faulty), stress_setup(faulty)).unwrap();
    let r2 = AdaptiveTest::run(stress_config(&healthy), stress_setup(healthy)).unwrap();
    assert!(r1.found(crash_pred), "faulty: {}", r1.summary());
    assert!(!r2.found(crash_pred), "healthy: {}", r2.summary());
}

#[test]
fn case2_deadlock_depends_on_merge_policy() {
    // Cyclic merge finds it on some seed; sequential never does.
    let deadlock = |k: &BugKind| matches!(k, BugKind::Deadlock { .. });
    let mut cyclic_found = false;
    for seed in 0..10 {
        let r = AdaptiveTest::run(case2_config(seed), setup(Variant::Buggy)).unwrap();
        if r.found(deadlock) {
            cyclic_found = true;
            break;
        }
    }
    assert!(cyclic_found);
    for seed in 0..5 {
        let mut cfg = case2_config(seed);
        cfg.op = MergeOp::Sequential;
        let r = AdaptiveTest::run(cfg, setup(Variant::Buggy)).unwrap();
        assert!(!r.found(deadlock), "seed {seed}: {}", r.summary());
    }
}

#[test]
fn producer_consumer_survives_command_churn() {
    // The well-synchronized control workload: pTest suspends/resumes the
    // producer and consumer mid-rendezvous, and no anomaly may appear —
    // semaphore blocking is not deadlock, and the detector must know the
    // difference.
    use ptest::pcore::workloads::producer_consumer;
    use ptest::{AdaptiveTest, AdaptiveTestConfig};

    let cfg = AdaptiveTestConfig {
        n: 2,
        s: 8,
        seed: 13,
        ..AdaptiveTestConfig::default()
    };
    let report = AdaptiveTest::run(cfg, |sys| {
        let kernel = sys.kernel_mut();
        let slots = kernel.create_semaphore(2);
        let filled = kernel.create_semaphore(0);
        let (prod, cons) = producer_consumer(20, slots, filled, 5);
        vec![kernel.register_program(prod), kernel.register_program(cons)]
    })
    .unwrap();
    assert!(report.completed, "{}", report.summary());
    assert!(
        !report.found(|k| matches!(k, BugKind::Deadlock { .. } | BugKind::SlaveCrash { .. })),
        "{}",
        report.summary()
    );
}

#[test]
fn starvation_and_inversion_scenarios_detect() {
    use ptest::{BugDetector, DetectorConfig};

    let (mut sys, _hog, worker) = scenarios::starvation_system();
    let mut det = BugDetector::new(DetectorConfig {
        progress_window: Cycles::new(5_000),
        ..DetectorConfig::default()
    });
    let mut starved = false;
    for i in 0..60_000u64 {
        sys.step();
        if i % 500 == 0 {
            for bug in det.observe(&sys, None, true) {
                if matches!(bug.kind, BugKind::Starvation { task, .. } if task == worker) {
                    starved = true;
                }
            }
        }
        if starved {
            break;
        }
    }
    assert!(starved, "low-priority worker starves behind the hog");
}

#[test]
fn lost_update_race_needs_value_oracle() {
    use ptest::{BugDetector, DetectorConfig};

    // The race corrupts data but never hangs: pTest's detector stays
    // silent while the oracle exposes the damage — documenting the
    // boundary of the paper's approach.
    let (mut sys, tasks) = scenarios::race_system(3, 40);
    let mut det = BugDetector::new(DetectorConfig::default());
    let mut hang_bugs = 0;
    for i in 0..300_000u64 {
        sys.step();
        if i % 1_000 == 0 {
            hang_bugs += det
                .observe(&sys, None, false)
                .iter()
                .filter(|b| matches!(b.kind, BugKind::Deadlock { .. } | BugKind::Livelock { .. }))
                .count();
        }
        if tasks
            .iter()
            .all(|&t| matches!(sys.kernel().task_state(t), Some(TaskState::Terminated(_))))
        {
            break;
        }
    }
    assert_eq!(hang_bugs, 0, "a data race is not a hang");
    assert!(
        scenarios::lost_updates(&sys, 3, 40) > 0,
        "the value oracle must expose lost updates"
    );
}
