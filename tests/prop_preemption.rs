//! Inert-preemption equivalence: with `quantum: None`, no clock skew and
//! no interrupt plan (the default), the preemption axis must be **byte
//! invisible** — a trial routed through the explored entry point with an
//! explicit inert [`PreemptionSpec`] serializes to exactly the same
//! `report_to_json` bytes as the unpreempted path, across
//! {LockStep, RandomPriority} × {SeqCst, StoreBuffer}, with and without
//! fast-forward.
//!
//! This is the contract that keeps the PR 3/5/6 golden fixtures and
//! every archived campaign report stable: preemption exploration is
//! strictly opt-in, and opting out costs nothing — not even a byte.

use proptest::prelude::*;
use ptest::faults::philosophers::PhilosophersScenario;
use ptest::pcore::{Op, Program, ProgramId};
use ptest::{
    derived_irq_seed, derived_memory_seed, derived_schedule_seed, AdaptiveTestConfig,
    DualCoreSystem, FnScenario, MemoryModelSpec, PreemptionSpec, Scenario, ScheduleSpec,
    TrialEngine, TrialOverrides, TrialScratch,
};

/// The golden-fixture compute workload (`golden_compute_seed42.json`
/// uses the same setup at n=3).
fn compute_scenario() -> impl Scenario {
    FnScenario::new(
        "compute",
        AdaptiveTestConfig {
            n: 3,
            s: 6,
            ..AdaptiveTestConfig::default()
        },
        |sys: &mut DualCoreSystem| -> Vec<ProgramId> {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).expect("valid"))]
        },
    )
}

/// A sleeper-dominated workload so the idle fast-forward engages — the
/// path where a phantom preemption horizon would be most visible.
fn sleeper_scenario() -> impl Scenario {
    FnScenario::new(
        "sleeper",
        AdaptiveTestConfig {
            n: 2,
            s: 4,
            ..AdaptiveTestConfig::default()
        },
        |sys: &mut DualCoreSystem| -> Vec<ProgramId> {
            let ops = vec![
                Op::Compute(5),
                Op::SleepFor(2_000),
                Op::Compute(5),
                Op::SleepFor(3_000),
                Op::Exit,
            ];
            vec![sys
                .kernel_mut()
                .register_program(Program::new(ops).expect("valid"))]
        },
    )
}

fn explorations() -> Vec<(ScheduleSpec, MemoryModelSpec)> {
    vec![
        (ScheduleSpec::LockStep, MemoryModelSpec::SeqCst),
        (ScheduleSpec::LockStep, MemoryModelSpec::store_buffer()),
        (ScheduleSpec::random_priority(), MemoryModelSpec::SeqCst),
        (
            ScheduleSpec::random_priority(),
            MemoryModelSpec::store_buffer(),
        ),
    ]
}

/// One trial at `seed` through the plain explored path (the unpreempted
/// default) vs. through an explicit inert-spec override, both ways with
/// and without fast-forward — all four must serialize byte-identically.
fn assert_inert_preemption_is_byte_invisible(scenario: &dyn Scenario, seed: u64) {
    let inert = PreemptionSpec {
        quantum: None,
        clock_skew: None,
        interrupts: None,
    };
    assert!(inert.is_inert());
    for (schedule, memory) in explorations() {
        let mut cfg = scenario.base_config();
        cfg.schedule = schedule;
        cfg.memory = memory;
        let schedule_seed = derived_schedule_seed(seed);
        let memory_seed = derived_memory_seed(seed);
        let mut scratch = TrialScratch::new();
        let mut jsons = Vec::new();
        for fast_forward in [true, false] {
            let mut engine = TrialEngine::new(cfg.clone()).unwrap();
            engine.set_fast_forward(fast_forward);
            let plain = engine
                .run_scenario_trial_explored(
                    scenario,
                    seed,
                    schedule_seed,
                    memory_seed,
                    &mut scratch,
                )
                .unwrap();
            let overridden = engine
                .run_scenario_trial_overridden(
                    scenario,
                    seed,
                    schedule_seed,
                    memory_seed,
                    TrialOverrides {
                        preemption: Some(inert),
                        irq_seed: Some(derived_irq_seed(seed)),
                        ..TrialOverrides::default()
                    },
                    &mut scratch,
                )
                .unwrap();
            jsons.push(ptest::report_to_json(&plain).unwrap());
            jsons.push(ptest::report_to_json(&overridden).unwrap());
        }
        for other in &jsons[1..] {
            assert_eq!(
                &jsons[0],
                other,
                "inert preemption changed report bytes: scenario={} seed={seed} \
                 schedule={schedule:?} memory={memory:?}",
                scenario.name(),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn inert_preemption_is_byte_invisible_on_the_compute_fixture(seed in 0u64..2_000) {
        assert_inert_preemption_is_byte_invisible(&compute_scenario(), seed);
    }

    #[test]
    fn inert_preemption_is_byte_invisible_on_the_sleeper_workload(seed in 0u64..2_000) {
        assert_inert_preemption_is_byte_invisible(&sleeper_scenario(), seed);
    }

    #[test]
    fn inert_preemption_is_byte_invisible_on_the_philosophers_fixture(seed in 0u64..500) {
        // The golden deadlock fixture (`golden_philosophers_seed7.json`):
        // detection timing and cycle rendering must not move by a byte.
        assert_inert_preemption_is_byte_invisible(&PhilosophersScenario::buggy(), seed);
    }
}
