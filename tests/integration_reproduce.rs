//! The reproduction story: every detected bug re-derives identically
//! from the seed and configuration embedded in its report — the paper's
//! "helps users reproduce the bugs", made checkable.

use ptest::faults::philosophers::{case2_config, setup, Variant};
use ptest::faults::stress::{stress_config, stress_setup, StressSpec};
use ptest::pcore::{Op, Program};
use ptest::{AdaptiveTest, AdaptiveTestConfig, BugKind, DualCoreSystem, ProgramId};

fn compute_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(25), Op::Exit]).expect("valid"))]
}

#[test]
fn clean_runs_reproduce_exactly() {
    let cfg = AdaptiveTestConfig {
        n: 4,
        s: 10,
        seed: 77,
        ..AdaptiveTestConfig::default()
    };
    let a = AdaptiveTest::run(cfg.clone(), compute_setup).unwrap();
    let b = AdaptiveTest::run(cfg, compute_setup).unwrap();
    assert_eq!(a.patterns, b.patterns);
    assert_eq!(a.merged, b.merged);
    assert_eq!(a.commands_issued, b.commands_issued);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.exec_records.len(), b.exec_records.len());
    for (ra, rb) in a.exec_records.iter().zip(&b.exec_records) {
        assert_eq!(ra.issued_at, rb.issued_at, "cycle-exact reissue");
        assert_eq!(ra.result, rb.result);
    }
}

#[test]
fn gc_crash_reproduces_bit_for_bit() {
    let spec = StressSpec::paper(4);
    let first = AdaptiveTest::run(stress_config(&spec), stress_setup(spec)).unwrap();
    assert!(
        first.found(|k| matches!(
            k,
            BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
        )),
        "{}",
        first.summary()
    );
    let again = AdaptiveTest::reproduce(&first, stress_setup(spec)).unwrap();
    assert_eq!(first.bugs.len(), again.bugs.len());
    for (a, b) in first.bugs.iter().zip(&again.bugs) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.detected_at, b.detected_at);
        assert_eq!(a.snapshot.heap, b.snapshot.heap);
    }
    assert_eq!(first.cycles, again.cycles);
}

#[test]
fn deadlock_reproduces_with_same_cycle() {
    // Find a deadlocking seed first.
    let mut hit = None;
    for seed in 0..10 {
        let report = AdaptiveTest::run(case2_config(seed), setup(Variant::Buggy)).unwrap();
        if report.found(|k| matches!(k, BugKind::Deadlock { .. })) {
            hit = Some(report);
            break;
        }
    }
    let first = hit.expect("a deadlocking seed exists in 0..10");
    let again = AdaptiveTest::reproduce(&first, setup(Variant::Buggy)).unwrap();
    let cycle_of = |r: &ptest::TestReport| {
        r.bugs.iter().find_map(|b| match &b.kind {
            BugKind::Deadlock { cycle } => Some(cycle.clone()),
            _ => None,
        })
    };
    assert_eq!(
        cycle_of(&first),
        cycle_of(&again),
        "identical wait-for cycle"
    );
}

#[test]
fn bug_reports_carry_reproduction_material() {
    let spec = StressSpec::paper(8);
    let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec)).unwrap();
    let Some(bug) = report.bugs.first() else {
        panic!("stress must find the GC bug: {}", report.summary());
    };
    // Definition 2 records for every controlled process.
    assert_eq!(bug.state_records.len(), report.config.n);
    // A kernel snapshot with the panic and heap statistics.
    assert!(bug.snapshot.panic.is_some() || !bug.trace_tail.is_empty());
    // The report echoes the exact configuration (the reproduction input).
    assert_eq!(report.config.seed, 8);
}
