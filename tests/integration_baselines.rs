//! pTest vs the ConTest-style and CHESS-style baselines on shared
//! scenarios — the comparison the paper argues qualitatively in §I.

use ptest::baselines::{RandomTester, RandomTesterConfig, SystematicConfig, SystematicExplorer};
use ptest::faults::philosophers::{self, Variant};
use ptest::pcore::{GcFaultMode, Op, Program};
use ptest::{
    AdaptiveTest, AdaptiveTestConfig, BugKind, DualCoreSystem, PatternGenerator, ProgramId,
    TestPattern,
};

fn worker_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(30), Op::Exit]).expect("valid"))]
}

#[test]
fn ptest_wastes_no_commands_where_random_wastes_many() {
    // Identical healthy slave; pTest's PFA keeps every command legal.
    let ptest_report = AdaptiveTest::run(
        AdaptiveTestConfig {
            n: 3,
            s: 16,
            seed: 8,
            cyclic_generation: true,
            ..AdaptiveTestConfig::default()
        },
        worker_setup,
    )
    .unwrap();
    assert!(ptest_report.completed);
    assert_eq!(
        ptest_report.ordering_errors(),
        0,
        "PFA-generated patterns are always legal: {}",
        ptest_report.summary()
    );

    let random_report = RandomTester::new(RandomTesterConfig {
        command_budget: ptest_report.commands_issued.max(100),
        seed: 8,
        ..RandomTesterConfig::default()
    })
    .run(worker_setup);
    assert!(
        random_report.error_replies > 0,
        "uniform random burns budget on illegal orders"
    );
}

#[test]
fn both_ptest_and_random_find_the_gc_crash() {
    let crash = |k: &BugKind| {
        matches!(
            k,
            BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
        )
    };

    let mut cfg = AdaptiveTestConfig {
        n: 4,
        s: 64,
        seed: 3,
        cyclic_generation: true,
        max_cycles: 20_000_000,
        ..AdaptiveTestConfig::default()
    };
    cfg.system.kernel.heap_bytes = 6 * 1024;
    cfg.system.kernel.gc_fault = GcFaultMode::LeakDeadBlocks { leak_every: 1 };
    let ptest_report = AdaptiveTest::run(cfg, worker_setup).unwrap();
    assert!(ptest_report.found(crash), "{}", ptest_report.summary());

    let mut rcfg = RandomTesterConfig {
        command_budget: 5_000,
        seed: 3,
        max_cycles: 20_000_000,
        ..RandomTesterConfig::default()
    };
    rcfg.system.kernel.heap_bytes = 6 * 1024;
    rcfg.system.kernel.gc_fault = GcFaultMode::LeakDeadBlocks { leak_every: 1 };
    let random_report = RandomTester::new(rcfg).run(worker_setup);
    assert!(random_report.found(crash));

    // pTest needs fewer commands: all of its churn is legal create/delete
    // cycles, while random wastes a large share.
    assert!(
        ptest_report.commands_issued <= random_report.commands_issued,
        "pTest {} vs random {}",
        ptest_report.commands_issued,
        random_report.commands_issued
    );
}

#[test]
fn systematic_explorer_is_exhaustive_but_explodes() {
    let g = PatternGenerator::pcore_paper().unwrap();
    let a = g.regex().alphabet().clone();
    let tc = a.sym("TC").unwrap();
    let tch = a.sym("TCH").unwrap();
    let td = a.sym("TD").unwrap();

    // Small space: 2 AB-BA tasks -> exhaustive success.
    let patterns = vec![
        TestPattern::new(vec![tc, tch, td]),
        TestPattern::new(vec![tc, tch, td]),
    ];
    let explorer = SystematicExplorer::new(SystematicConfig::default());
    let report = explorer.explore(&patterns, &a, |sys| {
        let kernel = sys.kernel_mut();
        let forks = vec![kernel.create_mutex(), kernel.create_mutex()];
        (0..2)
            .map(|i| {
                kernel.register_program(philosophers::philosopher_program(
                    i,
                    &forks,
                    Variant::Buggy,
                ))
            })
            .collect()
    });
    assert!(report.found(|k| matches!(k, BugKind::Deadlock { .. })));

    // Paper-scale space: 16 patterns of size 8 — the multinomial explodes
    // far past any practical limit, which is the CHESS trade-off.
    let big: Vec<TestPattern> = (0..16)
        .map(|_| TestPattern::new(vec![tc, tch, tch, tch, tch, tch, tch, td]))
        .collect();
    let refused = explorer.explore(&big, &a, worker_setup);
    assert_eq!(refused.space_size, None, "the space must be refused");
    assert_eq!(refused.runs, 0);
}
