//! Memory-model-exploration acceptance tests.
//!
//! Three pillars, mirroring `integration_schedule.rs` on the third seed
//! axis:
//!
//! 1. **The sequential-consistency anchor holds.** The default memory
//!    model is the historical shared-variable mirroring epoch on a fast
//!    path with no model machinery at all; `integration_multicore.rs`
//!    pins it against the pre-refactor golden fixtures byte for byte.
//! 2. **Reordering bugs become reachable.** Both weak-memory scenarios
//!    (a Dekker store-visibility race and an IRIW cross-reader
//!    disagreement) are invisible to every pattern seed under
//!    sequential consistency but detected under the store-buffer model
//!    — and every detection replays byte-identically from its recorded
//!    `(seed, schedule_seed, memory_seed)` triple.
//! 3. **Campaigns explore the (pattern × schedule × memory) cube.**
//!    Per-trial memory seeds derive from the master seed, outcomes
//!    record the replay triple, and per-model detection aggregates land
//!    in the round report.

use ptest::faults::weakmem::{
    reordering_manifested, IriwScenario, StoreVisibilityScenario, WeakMemVariant,
};
use ptest::{
    AdaptiveTest, Campaign, CampaignConfig, LearningConfig, MemoryModelSpec, Scenario, TrialEngine,
    TrialScratch,
};

fn run_triple(
    scenario: &dyn Scenario,
    memory: MemoryModelSpec,
    seed: u64,
    memory_seed: u64,
) -> ptest::TestReport {
    let mut cfg = scenario.base_config();
    cfg.memory = memory;
    TrialEngine::new(cfg)
        .unwrap()
        .run_scenario_trial_explored(scenario, seed, 0, memory_seed, &mut TrialScratch::new())
        .unwrap()
}

/// Searches a small (pattern seed × memory seed) grid for a
/// manifestation under the store-buffer model.
fn find_detection(scenario: &dyn Scenario) -> Option<(u64, u64)> {
    for seed in 0..3 {
        for memory_seed in 0..16 {
            let report = run_triple(scenario, MemoryModelSpec::store_buffer(), seed, memory_seed);
            if reordering_manifested(&report) {
                return Some((seed, memory_seed));
            }
        }
    }
    None
}

#[test]
fn both_weakmem_scenarios_are_seq_cst_invisible_but_store_buffer_detected() {
    let scenarios: [&dyn Scenario; 2] = [&StoreVisibilityScenario::buggy(), &IriwScenario::buggy()];
    for scenario in scenarios {
        // Sequential consistency: structurally unreachable, across
        // pattern and memory seeds (the latter must be inert).
        for seed in 0..4 {
            let report = run_triple(scenario, MemoryModelSpec::SeqCst, seed, seed ^ 0x5A5A);
            assert!(
                !reordering_manifested(&report),
                "{}: seq-cst seed {seed} must stay clean: {}",
                scenario.name(),
                report.summary()
            );
        }
        // Store buffer: reachable, and replayable from the triple.
        let (seed, memory_seed) = find_detection(scenario)
            .unwrap_or_else(|| panic!("{}: no seed pair in the search grid", scenario.name()));
        let first = run_triple(scenario, MemoryModelSpec::store_buffer(), seed, memory_seed);
        let again = run_triple(scenario, MemoryModelSpec::store_buffer(), seed, memory_seed);
        assert!(reordering_manifested(&first) && reordering_manifested(&again));
        assert_eq!(first.bugs.len(), again.bugs.len());
        for (a, b) in first.bugs.iter().zip(&again.bugs) {
            assert_eq!(a.kind, b.kind, "{}", scenario.name());
            assert_eq!(
                a.detected_at,
                b.detected_at,
                "{}: seed-triple replay must be byte-identical",
                scenario.name()
            );
        }
        assert_eq!(first.memory_seed, memory_seed);
        assert_eq!(first.config.memory_seed, Some(memory_seed));
    }
}

#[test]
fn fenced_variants_stay_clean_under_both_memory_models() {
    let scenarios: [&dyn Scenario; 2] =
        [&StoreVisibilityScenario::fenced(), &IriwScenario::fenced()];
    for scenario in scenarios {
        assert!(
            find_detection(scenario).is_none(),
            "{}: fenced variant tripped its guard",
            scenario.name()
        );
        let report = run_triple(scenario, MemoryModelSpec::SeqCst, 0, 0);
        assert!(!reordering_manifested(&report), "{}", report.summary());
    }
}

/// A campaign over the racy scenario detects the bug, records every
/// trial's replay triple, and any bug-finding trial reproduces from its
/// recorded `(seed, schedule_seed, memory_seed)` alone.
#[test]
fn campaign_detection_is_replayable_from_recorded_seed_triples() {
    let scenario = StoreVisibilityScenario::buggy();
    let cfg = CampaignConfig {
        trials_per_round: 12,
        rounds: 1,
        workers: 4,
        master_seed: 2009,
        learning: LearningConfig {
            enabled: false,
            ..LearningConfig::default()
        },
        ..CampaignConfig::default()
    };
    let report = Campaign::run(&cfg, &scenario).unwrap();
    let round = &report.rounds[0];
    assert_eq!(
        round.memory_detection.len(),
        1,
        "{:?}",
        round.memory_detection
    );
    assert_eq!(round.memory_detection[0].memory, "store-buffer(d=24)");
    let hit = round
        .trials
        .iter()
        .find(|t| !t.summary.bugs.is_empty())
        .expect("12 store-buffer seeds must reveal the visibility race");
    assert!(round.memory_detection[0].trials_with_bugs >= 1);
    // Replay standalone from the recorded triple.
    let replay = TrialEngine::new(scenario.base_config())
        .unwrap()
        .run_scenario_trial_explored(
            &scenario,
            hit.seed,
            hit.schedule_seed,
            hit.memory_seed,
            &mut TrialScratch::new(),
        )
        .unwrap();
    let replay_summary = replay.machine_summary();
    assert_eq!(
        replay_summary.bugs, hit.summary.bugs,
        "bug list must replay from the recorded triple"
    );
    assert_eq!(replay_summary.cycles, hit.summary.cycles);
}

/// The memory-model rotation probes both propagation semantics within
/// one round and aggregates detection per model — the bug shows up only
/// in the store-buffer bucket.
#[test]
fn memory_model_rotation_aggregates_per_model() {
    let scenario = StoreVisibilityScenario::buggy();
    let cfg = CampaignConfig {
        trials_per_round: 16,
        rounds: 1,
        workers: 4,
        master_seed: 7,
        learning: LearningConfig {
            enabled: false,
            ..LearningConfig::default()
        },
        memory_models: vec![MemoryModelSpec::SeqCst, MemoryModelSpec::store_buffer()],
        ..CampaignConfig::default()
    };
    let report = Campaign::run(&cfg, &scenario).unwrap();
    let round = &report.rounds[0];
    let labels: Vec<&str> = round
        .memory_detection
        .iter()
        .map(|d| d.memory.as_str())
        .collect();
    assert_eq!(labels, ["seq-cst", "store-buffer(d=24)"]);
    assert!(round.memory_detection.iter().all(|d| d.trials == 8));
    let seq_cst = &round.memory_detection[0];
    assert_eq!(
        seq_cst.trials_with_bugs, 0,
        "the race must stay invisible under sequential consistency"
    );
}

/// Single-seed entry points stay a one-seed story: the memory seed
/// derives deterministically from the pattern seed, and reproduction
/// through `AdaptiveTest::reproduce` replays memory model and all.
#[test]
fn reproduce_carries_the_memory_model() {
    let scenario = IriwScenario {
        variant: WeakMemVariant::Unfenced,
    };
    let first = AdaptiveTest::run_scenario(&scenario, 3).unwrap();
    assert_eq!(first.memory_seed, ptest::derived_memory_seed(3));
    let again = AdaptiveTest::reproduce(&first, |sys| scenario.setup(sys)).unwrap();
    assert_eq!(first.cycles, again.cycles);
    assert_eq!(first.bugs.len(), again.bugs.len());
    assert_eq!(first.memory_seed, again.memory_seed);
}
