//! Minimization determinism properties: shrinking is a pure function of
//! the (scenario, configuration, master seed) triple — the same hit
//! shrinks to a byte-identical [`ptest::MinimizedRepro`] no matter how
//! many workers the campaign ran on, the minimized reproducer reports
//! the same bug class as the original hit, and its serialized form
//! replays byte-identically. Exercised over the race scenarios ×
//! {lock-step, random-priority} × {seq-cst, store-buffer}.

use proptest::prelude::*;
use ptest::faults::races::{AtomicityRaceScenario, OrderViolationScenario};
use ptest::faults::weakmem::StoreVisibilityScenario;
use ptest::{
    replay_minimized, Campaign, CampaignConfig, CampaignReport, Configured, LearningConfig,
    MemoryModelSpec, Scenario, ScheduleSpec, TrialEngine, TrialScratch,
};

fn minimizing_cfg(workers: usize, master_seed: u64) -> CampaignConfig {
    CampaignConfig {
        trials_per_round: 6,
        rounds: 1,
        workers,
        master_seed,
        learning: LearningConfig {
            enabled: false,
            ..LearningConfig::default()
        },
        minimize_bugs: true,
        ..CampaignConfig::default()
    }
}

fn run(scenario: &dyn Scenario, workers: usize, master_seed: u64) -> CampaignReport {
    Campaign::run(&minimizing_cfg(workers, master_seed), scenario).expect("valid campaign")
}

/// Checks the shrink contract on every reproducer a report carries:
/// strictly shorter patterns, same bug class, byte-identical replay of
/// the serialized reproducer through a fresh engine.
fn check_contract(scenario: &dyn Scenario, report: &CampaignReport) {
    let engine = TrialEngine::new(scenario.base_config()).expect("valid scenario");
    let mut scratch = TrialScratch::new();
    for m in report.rounds.iter().flat_map(|r| &r.minimized) {
        assert!(
            m.repro.minimized_symbols < m.repro.original_symbols,
            "{}/{}: no shrink ({} -> {})",
            m.repro.scenario,
            m.repro.bug_class,
            m.repro.original_symbols,
            m.repro.minimized_symbols,
        );
        assert!(
            m.repro
                .summary
                .bugs
                .iter()
                .any(|b| b.class == m.repro.bug_class),
            "minimized summary lost class {}",
            m.repro.bug_class
        );
        let json = ptest::minimized_repro_to_json(&m.repro).expect("serializable");
        let parsed = ptest::minimized_repro_from_json(&json).expect("parseable");
        assert_eq!(parsed, m.repro, "reproducer JSON round-trip drifted");
        let replay = replay_minimized(&engine, scenario, &parsed, &mut scratch)
            .expect("minimized reproducer replays");
        assert_eq!(
            replay.machine_summary(),
            m.repro.summary,
            "{}/{}: minimized triple did not replay byte-identically",
            m.repro.scenario,
            m.repro.bug_class,
        );
    }
}

/// The full schedule × memory matrix over both schedule-sensitive race
/// scenarios and the store-visibility (weak-memory) race: every cell is
/// worker-count independent, and every reproducer that falls out
/// satisfies the shrink contract. Cells where the combination cannot
/// manifest the race (e.g. lock-step runs of the schedule-sensitive
/// races) legitimately minimize nothing — determinism must hold there
/// too.
#[test]
fn minimizing_matrix_is_worker_count_independent() {
    let order = OrderViolationScenario::buggy();
    let atomicity = AtomicityRaceScenario::buggy();
    let dekker = StoreVisibilityScenario::buggy();
    let scenarios: [&dyn Scenario; 3] = [&order, &atomicity, &dekker];
    let schedules = [ScheduleSpec::LockStep, ScheduleSpec::random_priority()];
    let memories = [MemoryModelSpec::SeqCst, MemoryModelSpec::store_buffer()];

    let mut minimized_cells = 0usize;
    for scenario in scenarios {
        for schedule in schedules {
            for memory in memories {
                let cell = Configured::adjust(ConfiguredView(scenario), |cfg| {
                    cfg.schedule = schedule;
                    cfg.memory = memory;
                });
                let one = run(&cell, 1, 2009);
                let three = run(&cell, 3, 2009);
                assert_eq!(
                    ptest::campaign_report_to_json(&one).unwrap(),
                    ptest::campaign_report_to_json(&three).unwrap(),
                    "{} under {}/{}: workers leaked into the report",
                    scenario.name(),
                    schedule.label(),
                    memory.label(),
                );
                check_contract(&cell, &one);
                minimized_cells += usize::from(one.rounds.iter().any(|r| !r.minimized.is_empty()));
            }
        }
    }
    assert!(
        minimized_cells >= 3,
        "too few matrix cells produced reproducers ({minimized_cells}): the matrix is vacuous"
    );
}

/// Borrowing adapter so one `&dyn Scenario` can be wrapped by
/// [`Configured`] (which takes ownership) without cloning concrete
/// scenario types.
struct ConfiguredView<'a>(&'a dyn Scenario);

impl Scenario for ConfiguredView<'_> {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn base_config(&self) -> ptest::AdaptiveTestConfig {
        self.0.base_config()
    }

    fn setup(&self, sys: &mut ptest::DualCoreSystem) -> Vec<ptest::ProgramId> {
        self.0.setup(sys)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For random master seeds, a minimizing campaign of the
    /// order-violation race is worker-count independent and every
    /// reproducer satisfies the shrink contract.
    #[test]
    fn minimizing_campaigns_agree_across_worker_counts(master_seed in 0u64..1_000) {
        let scenario = OrderViolationScenario::buggy();
        let one = run(&scenario, 1, master_seed);
        let four = run(&scenario, 4, master_seed);
        prop_assert_eq!(&one, &four);
        check_contract(&scenario, &one);
    }
}
