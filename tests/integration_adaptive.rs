//! End-to-end integration tests of the full adaptive testing procedure
//! across every crate: automata → core → master → bridge → pcore → soc.

use ptest::pcore::{Op, Program};
use ptest::{
    AdaptiveTest, AdaptiveTestConfig, BugKind, CommitterStatus, DualCoreSystem, MergeOp,
    ProbabilityAssignment, ProgramId,
};

fn compute_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(25), Op::Exit]).expect("valid"))]
}

#[test]
fn default_run_completes_cleanly() {
    let report = AdaptiveTest::run(AdaptiveTestConfig::default(), compute_setup).unwrap();
    assert!(report.completed);
    assert_eq!(report.committer_status, CommitterStatus::Done);
    assert!(report.bugs.is_empty(), "{}", report.summary());
    assert!(report.commands_issued > 0);
    // Short-lived workers may exit before mid-lifecycle commands arrive
    // (benign TaskNotLive races); *ordering* violations never occur.
    assert_eq!(report.ordering_errors(), 0);
}

#[test]
fn all_merge_policies_complete_on_healthy_slave() {
    for op in [
        MergeOp::Sequential,
        MergeOp::cyclic(),
        MergeOp::RoundRobin { chunk: 3 },
        MergeOp::RandomInterleave { seed: 4 },
        MergeOp::Staggered { overlap: 2 },
    ] {
        let cfg = AdaptiveTestConfig {
            n: 3,
            s: 8,
            op,
            seed: 11,
            ..AdaptiveTestConfig::default()
        };
        let report = AdaptiveTest::run(cfg, compute_setup).unwrap();
        assert!(report.completed, "op {op:?}: {}", report.summary());
        assert!(report.bugs.is_empty(), "op {op:?}: {}", report.summary());
    }
}

#[test]
fn sixteen_patterns_respect_task_limit() {
    // n = 16 concurrent lifecycles on a 16-slot kernel: tight but legal.
    let cfg = AdaptiveTestConfig {
        n: 16,
        s: 6,
        seed: 3,
        ..AdaptiveTestConfig::default()
    };
    let report = AdaptiveTest::run(cfg, compute_setup).unwrap();
    assert!(report.completed, "{}", report.summary());
    // NoFreeSlot can legitimately occur transiently; but no crash.
    assert!(!report.found(|k| matches!(k, BugKind::SlaveCrash { .. })));
}

#[test]
fn custom_regex_and_distribution_flow_through() {
    // A restricted protocol: tasks may only be created and destroyed.
    let cfg = AdaptiveTestConfig {
        regex_source: "TC (TD$ | TY$)".to_owned(),
        pd: ProbabilityAssignment::weights([("TC", 1.0), ("TD", 0.7), ("TY", 0.3)]),
        n: 4,
        s: 2,
        seed: 5,
        ..AdaptiveTestConfig::default()
    };
    let report = AdaptiveTest::run(cfg, compute_setup).unwrap();
    assert!(report.completed);
    assert!(report.bugs.is_empty());
    // Only TC/TD/TY appear in the coverage counts.
    for svc in report.coverage.service_counts.keys() {
        assert!(
            ["TC", "TD", "TY"].contains(&svc.as_str()),
            "unexpected {svc}"
        );
    }
}

#[test]
fn coverage_grows_with_pattern_size() {
    let small = AdaptiveTest::run(
        AdaptiveTestConfig {
            n: 1,
            s: 2,
            seed: 9,
            ..AdaptiveTestConfig::default()
        },
        compute_setup,
    )
    .unwrap();
    let large = AdaptiveTest::run(
        AdaptiveTestConfig {
            n: 8,
            s: 24,
            seed: 9,
            ..AdaptiveTestConfig::default()
        },
        compute_setup,
    )
    .unwrap();
    assert!(
        large.coverage.transitions_covered >= small.coverage.transitions_covered,
        "more/larger patterns cannot lose transition coverage"
    );
}

#[test]
fn exec_records_are_complete_and_ordered() {
    let cfg = AdaptiveTestConfig {
        n: 2,
        s: 6,
        seed: 21,
        ..AdaptiveTestConfig::default()
    };
    let report = AdaptiveTest::run(cfg, compute_setup).unwrap();
    assert!(report.completed);
    assert_eq!(report.exec_records.len(), report.merged.len());
    // Every record resolved; issue times strictly increase along the
    // merged order (the committer awaits each response).
    let mut last_issued = None;
    for (i, rec) in report.exec_records.iter().enumerate() {
        assert_eq!(rec.step_index, i);
        assert!(rec.skipped || rec.result.is_some(), "unresolved step {i}");
        if let Some(at) = rec.issued_at {
            if let Some(prev) = last_issued {
                assert!(at > prev, "step {i} issued out of order");
            }
            last_issued = Some(at);
        }
        if let (Some(issued), Some(done)) = (rec.issued_at, rec.completed_at) {
            assert!(done >= issued);
        }
    }
}

#[test]
fn slave_kernel_survives_error_heavy_patterns() {
    // Tiny heap forces NoFreeSlot/OOM-adjacent churn without the GC
    // fault; pCore must answer errors rather than crash.
    let mut cfg = AdaptiveTestConfig {
        n: 8,
        s: 16,
        cyclic_generation: true,
        seed: 2,
        max_cycles: 5_000_000,
        ..AdaptiveTestConfig::default()
    };
    cfg.system.kernel.heap_bytes = 3 * 1024; // ~5 concurrent tasks max
    let report = AdaptiveTest::run(cfg, compute_setup).unwrap();
    // Crash is legitimate here (OOM panics the kernel on create); but if
    // no crash was reported the run must have completed.
    if !report.found(|k| {
        matches!(
            k,
            BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
        )
    }) {
        assert!(report.completed, "{}", report.summary());
    }
}
