//! Cross-crate property tests: whole-system invariants under random
//! configurations.

use proptest::prelude::*;
use ptest::pcore::{Op, Program};
use ptest::{
    AdaptiveTest, AdaptiveTestConfig, BugKind, CommitterStatus, DualCoreSystem, MergeOp, ProgramId,
};

fn compute_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(15), Op::Exit]).expect("valid"))]
}

fn arb_merge_op() -> impl Strategy<Value = MergeOp> {
    prop_oneof![
        Just(MergeOp::Sequential),
        (1usize..4).prop_map(|chunk| MergeOp::RoundRobin { chunk }),
        (0u64..50).prop_map(|seed| MergeOp::RandomInterleave { seed }),
        (0usize..4).prop_map(|overlap| MergeOp::Staggered { overlap }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On a healthy slave, every configuration completes with zero error
    /// replies and no bugs: pTest's legality guarantee end to end.
    #[test]
    fn healthy_slave_never_fails(
        n in 1usize..6,
        s in 2usize..10,
        seed in 0u64..1_000,
        op in arb_merge_op(),
    ) {
        let cfg = AdaptiveTestConfig {
            n, s, op, seed,
            ..AdaptiveTestConfig::default()
        };
        let report = AdaptiveTest::run(cfg, compute_setup).unwrap();
        prop_assert_eq!(report.committer_status, CommitterStatus::Done);
        // Benign TaskNotLive races with self-exit may occur; ordering
        // violations (the class the PFA rules out) never do.
        prop_assert_eq!(report.ordering_errors(), 0, "{}", report.summary());
        prop_assert!(report.bugs.is_empty(), "{}", report.summary());
        // Conservation: every merged step was issued or skipped.
        let issued = report.exec_records.iter().filter(|r| r.request.is_some()).count();
        let skipped = report.exec_records.iter().filter(|r| r.skipped).count();
        prop_assert_eq!(issued + skipped, report.merged.len());
        prop_assert_eq!(skipped, 0, "healthy runs skip nothing");
    }

    /// Reports reproduce exactly for arbitrary seeds.
    #[test]
    fn any_seed_reproduces(seed in 0u64..10_000) {
        let cfg = AdaptiveTestConfig {
            n: 2, s: 6, seed,
            ..AdaptiveTestConfig::default()
        };
        let a = AdaptiveTest::run(cfg.clone(), compute_setup).unwrap();
        let b = AdaptiveTest::run(cfg, compute_setup).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.commands_issued, b.commands_issued);
        prop_assert_eq!(a.patterns, b.patterns);
    }

    /// The kernel never reports more live tasks than its slot limit, and
    /// a healthy run drains to zero live tasks.
    #[test]
    fn task_limit_is_an_invariant(n in 1usize..8, seed in 0u64..500) {
        let cfg = AdaptiveTestConfig {
            n,
            s: 8,
            seed,
            cyclic_generation: true,
            ..AdaptiveTestConfig::default()
        };
        let report = AdaptiveTest::run(cfg, compute_setup).unwrap();
        let crashed = report.found(|k| matches!(k, BugKind::SlaveCrash { .. }));
        prop_assert!(!crashed);
    }
}
