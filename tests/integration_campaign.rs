//! End-to-end integration of the campaign engine across the whole
//! stack: acceptance-scale fleets, cross-round learning on the Figure 1
//! scenario, and reproduction of individual campaign trials.

use ptest::faults::fig1::Fig1AdaptiveScenario;
use ptest::faults::philosophers::PhilosophersScenario;
use ptest::pcore::{Op, Program};
use ptest::{
    AdaptiveTest, AdaptiveTestConfig, Campaign, CampaignConfig, FnScenario, LearningConfig,
    Scenario,
};

fn compute_scenario() -> impl Scenario {
    FnScenario::new(
        "compute",
        AdaptiveTestConfig {
            n: 3,
            s: 6,
            ..AdaptiveTestConfig::default()
        },
        |sys| {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).expect("valid"))]
        },
    )
}

/// The PR's acceptance criterion: ≥ 32 trials over ≥ 2 feedback rounds
/// on ≥ 2 worker threads, deterministically.
#[test]
fn campaign_runs_32_trials_over_2_rounds_on_4_workers() {
    let scenario = compute_scenario();
    let cfg = CampaignConfig {
        trials_per_round: 16,
        rounds: 2,
        workers: 4,
        master_seed: 2009,
        learning: LearningConfig::default(),
        ..CampaignConfig::default()
    };
    let report = Campaign::run(&cfg, &scenario).unwrap();
    assert_eq!(report.total_trials(), 32);
    assert_eq!(report.rounds.len(), 2);
    assert_eq!(report.trials_per_round, 16);
    for round in &report.rounds {
        assert_eq!(round.trials.len(), 16);
        assert!(round.total_commands > 0);
        // Healthy compute workers: campaigns complete their patterns.
        for trial in &round.trials {
            assert!(trial.summary.completed, "trial {} failed", trial.trial);
            assert_eq!(trial.summary.ordering_errors, 0);
        }
    }
    // Per-trial seeds are all distinct across the whole fleet.
    let mut seeds: Vec<u64> = report
        .rounds
        .iter()
        .flat_map(|r| r.trials.iter().map(|t| t.seed))
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 32);
}

/// Cross-round learning on the Figure 1 scenario: after k feedback
/// rounds, mean commands-to-first-bug does not regress versus round 0,
/// and the detection rate does not drop (seeded, deterministic).
#[test]
fn fig1_learning_does_not_regress_detection_cost() {
    let scenario = Fig1AdaptiveScenario::default();
    let cfg = CampaignConfig {
        trials_per_round: 12,
        rounds: 3,
        workers: 4,
        master_seed: 2009,
        learning: LearningConfig::default(),
        ..CampaignConfig::default()
    };
    let report = Campaign::run(&cfg, &scenario).unwrap();
    let first = &report.rounds[0];
    let last = &report.rounds[report.rounds.len() - 1];
    let mean0 = first
        .mean_commands_to_first_bug
        .expect("round 0 must find the livelock on some trial");
    let mean_k = last
        .mean_commands_to_first_bug
        .expect("learning must not lose the bug entirely");
    assert!(
        mean_k <= mean0,
        "commands-to-first-bug regressed: round 0 = {mean0}, round k = {mean_k}"
    );
    assert!(
        last.detection_rate() >= first.detection_rate(),
        "detection rate dropped: {} -> {}",
        first.detection_rate(),
        last.detection_rate()
    );
    assert!(first.traces_learned > 0, "feedback must accumulate traces");
}

/// Any campaign trial can be reproduced stand-alone: its summary echoes
/// the seed, and `AdaptiveTest::run_scenario` at that seed (with the
/// round's distribution) reaches the same outcome.
#[test]
fn campaign_trials_are_individually_reproducible() {
    let scenario = PhilosophersScenario::buggy();
    let cfg = CampaignConfig {
        trials_per_round: 6,
        rounds: 1,
        workers: 3,
        master_seed: 7,
        learning: LearningConfig::default(),
        ..CampaignConfig::default()
    };
    let report = Campaign::run(&cfg, &scenario).unwrap();
    let round = &report.rounds[0];
    for trial in &round.trials {
        let rerun = AdaptiveTest::run_scenario(&scenario, trial.seed).unwrap();
        assert_eq!(
            rerun.machine_summary(),
            trial.summary,
            "trial {} must reproduce bit-for-bit",
            trial.trial
        );
    }
}

/// The facade JSON archive round-trips the full report.
#[test]
fn campaign_json_roundtrips_through_the_facade() {
    let scenario = compute_scenario();
    let report = Campaign::run(
        &CampaignConfig {
            trials_per_round: 4,
            rounds: 2,
            workers: 2,
            master_seed: 11,
            learning: LearningConfig::default(),
            ..CampaignConfig::default()
        },
        &scenario,
    )
    .unwrap();
    let json = ptest::campaign_report_to_json(&report).unwrap();
    let parsed = ptest::campaign_report_from_json(&json).unwrap();
    assert_eq!(parsed, report);
    assert!(json.contains("\"master_seed\""));
    assert!(json.contains("\"distribution\""));
}
