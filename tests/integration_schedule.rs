//! Schedule-exploration acceptance tests.
//!
//! Three pillars:
//!
//! 1. **The lock-step anchor holds.** The default scheduler is the
//!    historical lock-step step loop on a fast path with no scheduler
//!    machinery at all; `integration_multicore.rs` pins it against the
//!    pre-refactor golden fixtures byte for byte.
//! 2. **Schedule-sensitive bugs become reachable.** Both racy
//!    scenarios (an order violation and a cross-core atomicity bug) are
//!    invisible to every pattern seed under lock-step but detected
//!    under [`RandomPriorityScheduler`] — and every detection replays
//!    byte-identically from its recorded `(seed, schedule_seed)` pair.
//! 3. **Campaigns explore (pattern × schedule) space.** Per-trial
//!    schedule seeds derive from the master seed, outcomes record the
//!    replay pair, and per-schedule detection aggregates land in the
//!    round report.

use ptest::faults::races::{
    race_manifested, AtomicityRaceScenario, OrderViolationScenario, RaceVariant,
};
use ptest::{
    AdaptiveTest, Campaign, CampaignConfig, Configured, LearningConfig, Scenario, ScheduleSpec,
    TrialEngine, TrialScratch,
};

fn run_pair(
    scenario: &dyn Scenario,
    spec: ScheduleSpec,
    seed: u64,
    schedule_seed: u64,
) -> ptest::TestReport {
    let mut cfg = scenario.base_config();
    cfg.schedule = spec;
    TrialEngine::new(cfg)
        .unwrap()
        .run_scenario_trial_scheduled(scenario, seed, schedule_seed, &mut TrialScratch::new())
        .unwrap()
}

/// Searches a small (pattern seed × schedule seed) grid for a
/// manifestation under randomized priorities.
fn find_detection(scenario: &dyn Scenario) -> Option<(u64, u64)> {
    for seed in 0..4 {
        for schedule_seed in 0..8 {
            let report = run_pair(
                scenario,
                ScheduleSpec::random_priority(),
                seed,
                schedule_seed,
            );
            if race_manifested(&report) {
                return Some((seed, schedule_seed));
            }
        }
    }
    None
}

#[test]
fn both_racy_scenarios_are_lock_step_invisible_but_random_priority_detected() {
    let scenarios: [&dyn Scenario; 2] = [
        &OrderViolationScenario::buggy(),
        &AtomicityRaceScenario::buggy(),
    ];
    for scenario in scenarios {
        // Lock-step: structurally unreachable, across pattern seeds.
        for seed in 0..6 {
            let report = run_pair(scenario, ScheduleSpec::LockStep, seed, seed);
            assert!(
                !race_manifested(&report),
                "{}: lock-step seed {seed} must stay clean: {}",
                scenario.name(),
                report.summary()
            );
        }
        // Randomized priorities: reachable, and replayable.
        let (seed, schedule_seed) = find_detection(scenario)
            .unwrap_or_else(|| panic!("{}: no seed pair in the search grid", scenario.name()));
        let first = run_pair(
            scenario,
            ScheduleSpec::random_priority(),
            seed,
            schedule_seed,
        );
        let again = run_pair(
            scenario,
            ScheduleSpec::random_priority(),
            seed,
            schedule_seed,
        );
        assert!(race_manifested(&first) && race_manifested(&again));
        assert_eq!(first.bugs.len(), again.bugs.len());
        for (a, b) in first.bugs.iter().zip(&again.bugs) {
            assert_eq!(a.kind, b.kind, "{}", scenario.name());
            assert_eq!(
                a.detected_at,
                b.detected_at,
                "{}: seed-pair replay must be byte-identical",
                scenario.name()
            );
        }
        assert_eq!(first.schedule_seed, schedule_seed);
        assert_eq!(first.config.schedule_seed, Some(schedule_seed));
    }
}

#[test]
fn fixed_variants_stay_clean_under_both_schedules() {
    let scenarios: [&dyn Scenario; 2] = [
        &OrderViolationScenario::fixed(),
        &AtomicityRaceScenario::fixed(),
    ];
    for scenario in scenarios {
        assert!(
            find_detection(scenario).is_none(),
            "{}: properly synchronized variant tripped its guard",
            scenario.name()
        );
        let report = run_pair(scenario, ScheduleSpec::LockStep, 0, 0);
        assert!(!race_manifested(&report), "{}", report.summary());
    }
}

/// A campaign over the racy scenario detects the bug, records every
/// trial's replay pair, and any bug-finding trial reproduces from its
/// recorded `(seed, schedule_seed)` alone.
#[test]
fn campaign_detection_is_replayable_from_recorded_seed_pairs() {
    let scenario = OrderViolationScenario::buggy();
    let cfg = CampaignConfig {
        trials_per_round: 12,
        rounds: 1,
        workers: 4,
        master_seed: 2009,
        learning: LearningConfig {
            enabled: false,
            ..LearningConfig::default()
        },
        ..CampaignConfig::default()
    };
    let report = Campaign::run(&cfg, &scenario).unwrap();
    let round = &report.rounds[0];
    assert_eq!(
        round.schedule_detection.len(),
        1,
        "{:?}",
        round.schedule_detection
    );
    assert_eq!(round.schedule_detection[0].schedule, "random-priority(d=3)");
    let hit = round
        .trials
        .iter()
        .find(|t| !t.summary.bugs.is_empty())
        .expect("12 randomized schedules must reveal the order violation");
    assert!(round.schedule_detection[0].trials_with_bugs >= 1);
    // Replay standalone from the recorded pair.
    let replay = run_pair(
        &scenario,
        ScheduleSpec::random_priority(),
        hit.seed,
        hit.schedule_seed,
    );
    let replay_summary = replay.machine_summary();
    assert_eq!(
        replay_summary.bugs, hit.summary.bugs,
        "bug list must replay from the recorded pair"
    );
    assert_eq!(replay_summary.cycles, hit.summary.cycles);
}

/// The schedule-budget rotation sweeps PCT depths within one round and
/// aggregates detection per budget.
#[test]
fn schedule_budget_rotation_aggregates_per_budget() {
    let scenario = Configured::adjust(OrderViolationScenario::buggy(), |cfg| {
        cfg.schedule = ScheduleSpec::LockStep; // rotation overrides this
    });
    let cfg = CampaignConfig {
        trials_per_round: 8,
        rounds: 1,
        workers: 2,
        master_seed: 7,
        learning: LearningConfig {
            enabled: false,
            ..LearningConfig::default()
        },
        schedule_budgets: vec![0, 3],
        ..CampaignConfig::default()
    };
    let report = Campaign::run(&cfg, &scenario).unwrap();
    let round = &report.rounds[0];
    let labels: Vec<&str> = round
        .schedule_detection
        .iter()
        .map(|d| d.schedule.as_str())
        .collect();
    assert_eq!(labels, ["random-priority(d=0)", "random-priority(d=3)"]);
    assert!(round.schedule_detection.iter().all(|d| d.trials == 4));
}

/// Single-seed entry points stay a one-seed story: the schedule seed
/// derives deterministically from the pattern seed, and reproduction
/// through `AdaptiveTest::reproduce` replays schedule and all.
#[test]
fn reproduce_carries_the_schedule() {
    let scenario = AtomicityRaceScenario {
        variant: RaceVariant::Buggy,
        rounds: 8,
    };
    let first = AdaptiveTest::run_scenario(&scenario, 3).unwrap();
    assert_eq!(first.schedule_seed, ptest::derived_schedule_seed(3));
    let again = AdaptiveTest::reproduce(&first, |sys| scenario.setup(sys)).unwrap();
    assert_eq!(first.cycles, again.cycles);
    assert_eq!(first.bugs.len(), again.bugs.len());
    assert_eq!(first.schedule_seed, again.schedule_seed);
}
